#include "ml/encoded_dataset.h"

#include <algorithm>

#include "features/pair_feature_kernel.h"
#include "pxql/compiled_predicate.h"

namespace perfxplain {

EncodedDataset::EncodedDataset(const ColumnarLog& columns,
                               const PairSchema& schema,
                               const std::vector<PairRef>& pairs,
                               double sim_fraction)
    : schema_(&schema),
      interner_(&columns.interner()),
      pairs_(pairs) {
  const std::size_t m = pairs_.size();
  labels_.reserve(m);
  for (const PairRef& pair : pairs_) {
    labels_.push_back(pair.observed ? 1 : 0);
  }

  features_.resize(schema.size());
  for (std::size_t f = 0; f < schema.size(); ++f) {
    FeatureColumn& column = features_[f];
    const std::size_t raw = schema.RawIndexOf(f);
    const bool numeric_raw = columns.is_numeric(raw);
    const PairFeatureKind kind = schema.KindOf(f);
    column.numeric = kind == PairFeatureKind::kBase && numeric_raw;
    if (column.numeric) {
      const NumericColumn& c = columns.numeric_column(raw);
      column.values.assign(m, 0.0);
      column.present = PresenceBitmap(m);
      for (std::size_t r = 0; r < m; ++r) {
        const kernel::BaseNumericResult base = kernel::BaseNumeric(
            c.present.Test(pairs_[r].first), c.values[pairs_[r].first],
            c.present.Test(pairs_[r].second), c.values[pairs_[r].second]);
        if (base.present) {
          column.values[r] = base.value;
          column.present.Set(r);
        }
      }
      continue;
    }
    column.codes.assign(m, -1);
    switch (kind) {
      case PairFeatureKind::kIsSame:
        if (numeric_raw) {
          const NumericColumn& c = columns.numeric_column(raw);
          for (std::size_t r = 0; r < m; ++r) {
            column.codes[r] = kernel::IsSameNumeric(
                c.present.Test(pairs_[r].first), c.values[pairs_[r].first],
                c.present.Test(pairs_[r].second), c.values[pairs_[r].second],
                sim_fraction);
          }
        } else {
          const NominalColumn& c = columns.nominal_column(raw);
          for (std::size_t r = 0; r < m; ++r) {
            column.codes[r] = kernel::IsSameNominal(
                c.codes[pairs_[r].first], c.codes[pairs_[r].second]);
          }
        }
        break;
      case PairFeatureKind::kCompare:
        if (numeric_raw) {
          const NumericColumn& c = columns.numeric_column(raw);
          for (std::size_t r = 0; r < m; ++r) {
            column.codes[r] = kernel::CompareNumeric(
                c.present.Test(pairs_[r].first), c.values[pairs_[r].first],
                c.present.Test(pairs_[r].second), c.values[pairs_[r].second],
                sim_fraction);
          }
        }
        // Nominal raw feature: compare is undefined; stays all-missing.
        break;
      case PairFeatureKind::kDiff:
        if (!numeric_raw) {
          const NominalColumn& c = columns.nominal_column(raw);
          for (std::size_t r = 0; r < m; ++r) {
            column.codes[r] = kernel::DiffPacked(c.codes[pairs_[r].first],
                                                 c.codes[pairs_[r].second]);
          }
        }
        break;
      case PairFeatureKind::kBase: {
        const NominalColumn& c = columns.nominal_column(raw);
        for (std::size_t r = 0; r < m; ++r) {
          column.codes[r] = kernel::BaseNominal(c.codes[pairs_[r].first],
                                                c.codes[pairs_[r].second]);
        }
        break;
      }
    }
  }
}

Value EncodedDataset::DecodeValue(std::size_t pair_index,
                                  std::size_t row) const {
  const FeatureColumn& column = features_[pair_index];
  if (column.numeric) {
    if (!column.present.Test(row)) return Value::Missing();
    return Value::Number(column.values[row]);
  }
  return DecodeCode(pair_index, column.codes[row]);
}

Value EncodedDataset::DecodeCode(std::size_t pair_index,
                                 std::int64_t code) const {
  if (code < 0) return Value::Missing();
  switch (schema_->KindOf(pair_index)) {
    case PairFeatureKind::kIsSame:
      return DecodeIsSame(static_cast<std::int8_t>(code));
    case PairFeatureKind::kCompare:
      return DecodeCompare(static_cast<std::int8_t>(code));
    case PairFeatureKind::kDiff:
      return DecodeDiff(code, *interner_);
    case PairFeatureKind::kBase:
      return DecodeBaseNominal(static_cast<std::int32_t>(code), *interner_);
  }
  return Value::Missing();
}

EncodedAtomTest::EncodedAtomTest(const EncodedDataset& data,
                                 const Atom& atom) {
  PX_CHECK(atom.bound()) << "encoded test needs a bound atom: "
                         << atom.feature();
  pair_index_ = atom.pair_index();
  numeric_ = data.IsNumericFeature(pair_index_);
  op_ = atom.op();
  const Value& constant = atom.constant();
  const bool ordering = op_ != CompareOp::kEq && op_ != CompareOp::kNe;

  if (numeric_) {
    if (!constant.is_numeric()) {
      always_false_ = true;  // kind mismatch (or missing constant)
      return;
    }
    num_const_ = constant.number();
    return;
  }

  // Nominal-valued feature: ordering operators and non-nominal constants
  // can never match.
  if (ordering || !constant.is_nominal()) {
    always_false_ = true;
    return;
  }
  // The constant lowering is shared with the predicate compiler
  // (compiled_predicate.cc), so both fast paths resolve the categorical
  // domains identically.
  const StringInterner& interner = data.interner();
  switch (data.schema().KindOf(pair_index_)) {
    case PairFeatureKind::kIsSame: {
      const std::int8_t target = IsSameConstantTarget(constant);
      if (target >= 0) code_targets_.push_back(target);
      break;
    }
    case PairFeatureKind::kCompare: {
      const std::int8_t target = CompareConstantTarget(constant);
      if (target >= 0) code_targets_.push_back(target);
      break;
    }
    case PairFeatureKind::kDiff:
      for (const auto& [left, right] :
           DiffConstantTargets(constant, interner)) {
        code_targets_.push_back(kernel::DiffPacked(left, right));
      }
      break;
    case PairFeatureKind::kBase: {
      const std::int32_t code = interner.Lookup(constant.nominal());
      if (code != StringInterner::kNoCode) code_targets_.push_back(code);
      break;
    }
  }
  // Equality against a constant no cell can encode is statically false;
  // inequality of a same-kind constant matches every present cell.
  if (op_ == CompareOp::kEq && code_targets_.empty()) always_false_ = true;
}

bool EncodedAtomTest::Matches(const EncodedDataset& data,
                              std::size_t row) const {
  if (always_false_) return false;
  if (numeric_) {
    if (!data.NumericPresent(pair_index_, row)) return false;
    return CompareDoubles(op_, data.NumericValues(pair_index_)[row],
                          num_const_);
  }
  const std::int64_t code = data.Codes(pair_index_)[row];
  if (code < 0) return false;
  bool in_targets = false;
  for (std::int64_t target : code_targets_) {
    if (code == target) {
      in_targets = true;
      break;
    }
  }
  return op_ == CompareOp::kEq ? in_targets : !in_targets;
}

}  // namespace perfxplain
