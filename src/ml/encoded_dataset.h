#ifndef PERFXPLAIN_ML_ENCODED_DATASET_H_
#define PERFXPLAIN_ML_ENCODED_DATASET_H_

#include <cstdint>
#include <vector>

#include "common/value.h"
#include "features/pair_schema.h"
#include "log/columnar.h"
#include "pxql/ast.h"

namespace perfxplain {

/// A column-major, integer-coded training matrix: one column per Table 1
/// pair feature, one row per sampled training pair. Built from a
/// ColumnarLog via the pair-feature kernels, so no Value is ever
/// materialized on the fast path.
///
/// Column representations:
///  - nominal-valued features (isSame, compare, diff, nominal base) expose
///    a uniform int64 code view: isSame/compare use the kernel codes, diff
///    uses packed (left,right) interner-code pairs, nominal base uses the
///    shared interner's codes. Negative = missing. Equal codes <=> equal
///    Values.
///  - numeric base features are double arrays with a presence bitmap.
///
/// The ColumnarLog's interner must outlive the dataset (codes decode
/// through it).
class EncodedDataset {
 public:
  EncodedDataset(const ColumnarLog& columns, const PairSchema& schema,
                 const std::vector<PairRef>& pairs, double sim_fraction);

  std::size_t rows() const { return pairs_.size(); }
  const PairSchema& schema() const { return *schema_; }
  const StringInterner& interner() const { return *interner_; }
  const std::vector<PairRef>& pairs() const { return pairs_; }

  /// Per-row observed/expected labels (1 = observed).
  const std::vector<std::uint8_t>& labels() const { return labels_; }

  /// True when the pair feature holds doubles (base feature of a numeric
  /// raw feature); all other features are code columns.
  bool IsNumericFeature(std::size_t pair_index) const {
    return features_[pair_index].numeric;
  }
  const std::vector<std::int64_t>& Codes(std::size_t pair_index) const {
    return features_[pair_index].codes;
  }
  const std::vector<double>& NumericValues(std::size_t pair_index) const {
    return features_[pair_index].values;
  }
  bool NumericPresent(std::size_t pair_index, std::size_t row) const {
    return features_[pair_index].present.Test(row);
  }

  /// Decodes a cell (or a code of the column) back to the exact Value the
  /// legacy path would compute — used to build Atom constants.
  Value DecodeValue(std::size_t pair_index, std::size_t row) const;
  Value DecodeCode(std::size_t pair_index, std::int64_t code) const;

 private:
  struct FeatureColumn {
    bool numeric = false;
    std::vector<std::int64_t> codes;
    std::vector<double> values;
    PresenceBitmap present;
  };

  const PairSchema* schema_;
  const StringInterner* interner_;
  std::vector<PairRef> pairs_;
  std::vector<std::uint8_t> labels_;
  std::vector<FeatureColumn> features_;
};

/// An Atom lowered against an EncodedDataset: evaluates Atom::Matches over
/// the encoded columns without materializing Values. Exact for every
/// operator, including atoms whose constants the dictionary has never seen
/// (they match nothing for =, everything present for != of the same kind).
class EncodedAtomTest {
 public:
  EncodedAtomTest(const EncodedDataset& data, const Atom& atom);

  bool Matches(const EncodedDataset& data, std::size_t row) const;

 private:
  std::size_t pair_index_ = 0;
  bool numeric_ = false;
  CompareOp op_ = CompareOp::kEq;
  bool always_false_ = false;
  /// Codes equal to the atom constant (several for ambiguous diff strings).
  std::vector<std::int64_t> code_targets_;
  double num_const_ = 0.0;
};

}  // namespace perfxplain

#endif  // PERFXPLAIN_ML_ENCODED_DATASET_H_
