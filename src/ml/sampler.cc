#include "ml/sampler.h"

#include <algorithm>
#include <unordered_map>

namespace perfxplain {

std::vector<TrainingExample> BalancedSample(
    std::vector<TrainingExample> examples, const SamplerOptions& options,
    Rng& rng) {
  std::size_t n_observed = 0;
  for (const auto& example : examples) {
    if (example.observed) ++n_observed;
  }
  const std::size_t n_expected = examples.size() - n_observed;
  const double m = static_cast<double>(options.sample_size);

  const double p_observed =
      n_observed == 0 ? 0.0
                      : std::min(1.0, m / (2.0 * static_cast<double>(
                                                    n_observed)));
  const double p_expected =
      n_expected == 0 ? 0.0
                      : std::min(1.0, m / (2.0 * static_cast<double>(
                                                    n_expected)));

  std::vector<TrainingExample> sample;
  sample.reserve(options.sample_size + options.sample_size / 4);
  for (auto& example : examples) {
    const double p = example.observed ? p_observed : p_expected;
    if (rng.Bernoulli(p)) {
      sample.push_back(std::move(example));
    }
  }
  return sample;
}

namespace {

/// One diversity filter for every example representation: `Example` only
/// needs `first`/`second` record indexes (TrainingExample on the legacy
/// path, PairRef on the encoded path).
template <typename Example>
std::vector<Example> EnforceRecordDiversityImpl(
    std::vector<Example> examples, std::size_t max_pairs_per_record,
    bool keep_first) {
  if (max_pairs_per_record == 0) return examples;
  std::unordered_map<std::size_t, std::size_t> usage;
  std::vector<Example> kept;
  kept.reserve(examples.size());
  for (std::size_t i = 0; i < examples.size(); ++i) {
    Example& example = examples[i];
    if (i == 0 && keep_first) {
      kept.push_back(std::move(example));
      continue;
    }
    std::size_t& first_uses = usage[example.first];
    std::size_t& second_uses = usage[example.second];
    if (first_uses >= max_pairs_per_record ||
        second_uses >= max_pairs_per_record) {
      continue;
    }
    ++first_uses;
    ++second_uses;
    kept.push_back(std::move(example));
  }
  return kept;
}

}  // namespace

std::vector<TrainingExample> EnforceRecordDiversity(
    std::vector<TrainingExample> examples, std::size_t max_pairs_per_record,
    bool keep_first) {
  return EnforceRecordDiversityImpl(std::move(examples),
                                    max_pairs_per_record, keep_first);
}

std::vector<PairRef> EnforceRecordDiversity(std::vector<PairRef> pairs,
                                            std::size_t max_pairs_per_record,
                                            bool keep_first) {
  return EnforceRecordDiversityImpl(std::move(pairs), max_pairs_per_record,
                                    keep_first);
}

}  // namespace perfxplain
