#ifndef PERFXPLAIN_ML_SPLIT_H_
#define PERFXPLAIN_ML_SPLIT_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "features/pair_features.h"
#include "features/pair_schema.h"
#include "ml/encoded_dataset.h"
#include "pxql/ast.h"

namespace perfxplain {

/// A candidate atomic predicate for one feature, with its information gain
/// over the current example set (line 5 of Algorithm 1).
struct SplitCandidate {
  Atom atom;
  double gain = 0.0;
};

/// Options controlling the per-feature predicate search.
struct SplitOptions {
  /// When true (PerfXplain's setting), every candidate atom must be
  /// satisfied by the pair of interest, so the final explanation is
  /// applicable (Definition 3). When false (plain decision-tree usage) the
  /// search is unconstrained.
  bool constrain_to_pair = true;

  /// A candidate predicate must be satisfied by at least this many
  /// examples. Guards against atoms that isolate (nearly) only the pair of
  /// interest, which look perfectly precise on the training sample but do
  /// not generalize.
  std::size_t min_support = 1;
};

/// Finds the predicate with maximum information gain for pair feature
/// `pair_index` over `examples` (maxInfoGainPredicate in Algorithm 1).
///
/// Nominal features admit only equality tests; under the pair-of-interest
/// constraint the only candidate constant is the pair's own value. Numeric
/// features admit equality plus <= / >= threshold tests at midpoints
/// between adjacent distinct observed values (C4.5-style); under the
/// constraint, <= thresholds must be at or above the pair's value and >=
/// thresholds at or below it. Examples whose value is missing never satisfy
/// a candidate.
///
/// `poi_value` is the pair of interest's value for this feature. Returns
/// nullopt when the feature yields no usable candidate (e.g., the pair's
/// value is missing while constrained, or all example values are missing).
std::optional<SplitCandidate> BestPredicateForFeature(
    const PairSchema& schema, const std::vector<TrainingExample>& examples,
    std::size_t pair_index, const Value& poi_value,
    const SplitOptions& options);

/// Encoded fast path of BestPredicateForFeature: the same search over an
/// integer-coded training matrix, scanning codes and doubles instead of
/// Values. `rows` is the current working set (dataset row indices, in
/// order) and `labels` the per-dataset-row positive flags (already flipped
/// when optimizing relevance). `poi_row`, when set, is the dataset row of
/// the pair of interest (nullopt reproduces the unconstrained decision-tree
/// search with a missing poi value). Produces bit-identical candidates and
/// gains to the Value path.
std::optional<SplitCandidate> BestPredicateForFeatureEncoded(
    const EncodedDataset& data, const std::vector<std::uint32_t>& rows,
    const std::vector<std::uint8_t>& labels, std::size_t pair_index,
    std::optional<std::size_t> poi_row, const SplitOptions& options);

/// Convenience: labels of `examples` as a bit vector (true = observed).
std::vector<bool> Labels(const std::vector<TrainingExample>& examples);

}  // namespace perfxplain

#endif  // PERFXPLAIN_ML_SPLIT_H_
