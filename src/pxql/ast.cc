#include "pxql/ast.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

namespace perfxplain {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

Atom Atom::Bound(const PairSchema& schema, std::size_t pair_index,
                 CompareOp op, Value constant) {
  Atom atom(schema.NameOf(pair_index), op, std::move(constant));
  atom.pair_index_ = pair_index;
  return atom;
}

Status Atom::Bind(const PairSchema& schema) {
  auto index = schema.Resolve(feature_);
  if (!index.ok()) return index.status();
  pair_index_ = index.value();
  const ValueKind kind = schema.ValueKindOf(pair_index_);
  const bool ordering = op_ != CompareOp::kEq && op_ != CompareOp::kNe;
  if (ordering) {
    if (kind != ValueKind::kNumeric) {
      return Status::InvalidArgument("ordering operator on nominal feature: " +
                                     ToString());
    }
    if (!constant_.is_numeric()) {
      return Status::InvalidArgument("ordering operator needs numeric "
                                     "constant: " +
                                     ToString());
    }
  } else if (kind == ValueKind::kNumeric && constant_.is_nominal()) {
    return Status::InvalidArgument("nominal constant for numeric feature: " +
                                   ToString());
  }
  return Status::OK();
}

bool Atom::Matches(const Value& value) const {
  if (value.is_missing()) return false;
  switch (op_) {
    case CompareOp::kEq:
      return value == constant_;
    case CompareOp::kNe:
      return !constant_.is_missing() && value != constant_ &&
             value.kind() == constant_.kind();
    case CompareOp::kLt:
    case CompareOp::kLe:
    case CompareOp::kGt:
    case CompareOp::kGe: {
      if (!value.is_numeric() || !constant_.is_numeric()) return false;
      return CompareDoubles(op_, value.number(), constant_.number());
    }
  }
  return false;
}

std::string Atom::ToString() const {
  return feature_ + " " + CompareOpToString(op_) + " " + constant_.ToString();
}

Predicate Predicate::And(const Predicate& other) const {
  std::vector<Atom> atoms = atoms_;
  atoms.insert(atoms.end(), other.atoms_.begin(), other.atoms_.end());
  return Predicate(std::move(atoms));
}

Status Predicate::Bind(const PairSchema& schema) {
  for (Atom& atom : atoms_) {
    PX_RETURN_IF_ERROR(atom.Bind(schema));
  }
  return Status::OK();
}

bool Predicate::bound() const {
  return std::all_of(atoms_.begin(), atoms_.end(),
                     [](const Atom& a) { return a.bound(); });
}

bool Predicate::Eval(const PairFeatureView& view) const {
  for (const Atom& atom : atoms_) {
    if (!atom.Eval(view)) return false;
  }
  return true;
}

bool Predicate::Eval(const std::vector<Value>& features) const {
  for (const Atom& atom : atoms_) {
    if (!atom.Eval(features)) return false;
  }
  return true;
}

std::string Predicate::ToString() const {
  if (atoms_.empty()) return "true";
  std::string out;
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    if (i > 0) out += " AND ";
    out += atoms_[i].ToString();
  }
  return out;
}

namespace {

/// Numeric interval with optional open bounds plus nominal constraints,
/// accumulated per feature while checking disjointness.
struct FeatureConstraint {
  double lo = -std::numeric_limits<double>::infinity();
  bool lo_open = false;
  double hi = std::numeric_limits<double>::infinity();
  bool hi_open = false;
  // At most one required nominal/exact value; empty = unconstrained.
  bool has_equal = false;
  Value equal;
  std::vector<Value> not_equal;
  bool contradictory = false;

  void AddAtom(const Atom& atom) {
    const Value& c = atom.constant();
    switch (atom.op()) {
      case CompareOp::kEq:
        if (has_equal && !(equal == c)) {
          contradictory = true;
        } else {
          has_equal = true;
          equal = c;
        }
        break;
      case CompareOp::kNe:
        not_equal.push_back(c);
        break;
      case CompareOp::kLt:
        if (c.is_numeric() && (c.number() < hi ||
                               (c.number() == hi && !hi_open))) {
          hi = c.number();
          hi_open = true;
        }
        break;
      case CompareOp::kLe:
        if (c.is_numeric() && c.number() < hi) {
          hi = c.number();
          hi_open = false;
        }
        break;
      case CompareOp::kGt:
        if (c.is_numeric() && (c.number() > lo ||
                               (c.number() == lo && !lo_open))) {
          lo = c.number();
          lo_open = true;
        }
        break;
      case CompareOp::kGe:
        if (c.is_numeric() && c.number() > lo) {
          lo = c.number();
          lo_open = false;
        }
        break;
    }
  }

  bool Unsatisfiable() const {
    if (contradictory) return true;
    if (lo > hi) return true;
    if (lo == hi && (lo_open || hi_open)) return true;
    if (has_equal) {
      for (const Value& v : not_equal) {
        if (v == equal) return true;
      }
      if (equal.is_numeric()) {
        const double e = equal.number();
        if (e < lo || e > hi) return true;
        if (e == lo && lo_open) return true;
        if (e == hi && hi_open) return true;
      }
    }
    return false;
  }
};

}  // namespace

bool ProvablyDisjoint(const Predicate& a, const Predicate& b) {
  std::map<std::string, FeatureConstraint> constraints;
  for (const Predicate* p : {&a, &b}) {
    for (const Atom& atom : p->atoms()) {
      constraints[atom.feature()].AddAtom(atom);
    }
  }
  for (const auto& [feature, constraint] : constraints) {
    if (constraint.Unsatisfiable()) return true;
  }
  return false;
}

}  // namespace perfxplain
