#include "pxql/query.h"

namespace perfxplain {

Status Query::Bind(const PairSchema& schema) {
  PX_RETURN_IF_ERROR(despite.Bind(schema));
  PX_RETURN_IF_ERROR(observed.Bind(schema));
  PX_RETURN_IF_ERROR(expected.Bind(schema));
  return Status::OK();
}

Status Query::Validate() const {
  if (observed.is_true()) {
    return Status::InvalidArgument("OBSERVED clause must not be empty");
  }
  if (expected.is_true()) {
    return Status::InvalidArgument("EXPECTED clause must not be empty");
  }
  if (!ProvablyDisjoint(observed, expected)) {
    return Status::FailedPrecondition(
        "OBSERVED must entail NOT EXPECTED; the clauses '" +
        observed.ToString() + "' and '" + expected.ToString() +
        "' are not provably disjoint");
  }
  return Status::OK();
}

std::vector<bool> OutcomeRawFeatureMask(const Query& bound_query,
                                        const PairSchema& schema) {
  std::vector<bool> excluded(schema.raw_size(), false);
  for (const Predicate* predicate :
       {&bound_query.observed, &bound_query.expected}) {
    for (const Atom& atom : predicate->atoms()) {
      PX_CHECK(atom.bound());
      excluded[schema.RawIndexOf(atom.pair_index())] = true;
    }
  }
  return excluded;
}

std::string Query::ToString() const {
  std::string out;
  if (!first_id.empty() || !second_id.empty()) {
    out += "FOR J1, J2 WHERE J1.id = '" + first_id + "' AND J2.id = '" +
           second_id + "'\n";
  }
  if (!despite.is_true()) {
    out += "DESPITE " + despite.ToString() + "\n";
  }
  out += "OBSERVED " + observed.ToString() + "\n";
  out += "EXPECTED " + expected.ToString();
  return out;
}

}  // namespace perfxplain
