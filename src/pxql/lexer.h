#ifndef PERFXPLAIN_PXQL_LEXER_H_
#define PERFXPLAIN_PXQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace perfxplain {

/// Token categories produced by the PXQL lexer.
enum class TokenType {
  kIdent,    ///< feature names, keywords, bare nominal constants
  kNumber,   ///< numeric literal (possibly with a size/time unit suffix)
  kString,   ///< 'quoted' or "quoted" nominal constant
  kOp,       ///< = != <> < <= > >=
  kComma,
  kDot,
  kLParen,
  kRParen,
  kEnd,
};

/// One lexical token. For kNumber the numeric value (unit applied) is in
/// `number`; for everything else `text` carries the payload.
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  double number = 0.0;
  std::size_t offset = 0;  ///< byte offset in the input, for error messages
};

/// Splits PXQL text into tokens. Unit suffixes KB/MB/GB/TB (powers of 1024
/// bytes) and ms/s/min (seconds) are folded into numeric literals, so
/// "blocksize >= 128MB" parses as 128*2^20.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace perfxplain

#endif  // PERFXPLAIN_PXQL_LEXER_H_
