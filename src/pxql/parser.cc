#include "pxql/parser.h"

#include <vector>

#include "common/string_util.h"
#include "pxql/lexer.h"

namespace perfxplain {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> ParseQuery() {
    Query query;
    if (PeekKeyword("FOR")) {
      PX_RETURN_IF_ERROR(ParseForClause(query));
    }
    if (PeekKeyword("DESPITE")) {
      Advance();
      auto pred = ParsePredicate();
      if (!pred.ok()) return pred.status();
      query.despite = std::move(pred).value();
    }
    if (!PeekKeyword("OBSERVED")) {
      return Error("expected OBSERVED clause");
    }
    Advance();
    auto obs = ParsePredicate();
    if (!obs.ok()) return obs.status();
    query.observed = std::move(obs).value();
    if (!PeekKeyword("EXPECTED")) {
      return Error("expected EXPECTED clause");
    }
    Advance();
    auto exp = ParsePredicate();
    if (!exp.ok()) return exp.status();
    query.expected = std::move(exp).value();
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing input '" + Peek().text + "'");
    }
    return query;
  }

  Result<Predicate> ParsePredicateOnly() {
    auto pred = ParsePredicate();
    if (!pred.ok()) return pred.status();
    if (Peek().type != TokenType::kEnd) {
      return Status::ParseError("unexpected trailing input '" + Peek().text +
                                "'");
    }
    return pred;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool PeekKeyword(const char* keyword) const {
    return Peek().type == TokenType::kIdent &&
           ToLower(Peek().text) == ToLower(keyword);
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " (at offset " +
                              std::to_string(Peek().offset) + ")");
  }

  Status ParseForClause(Query& query) {
    Advance();  // FOR
    if (Peek().type != TokenType::kIdent) return Error("expected alias");
    const std::string alias1 = Advance().text;
    if (Peek().type != TokenType::kComma) return Error("expected ','");
    Advance();
    if (Peek().type != TokenType::kIdent) return Error("expected alias");
    const std::string alias2 = Advance().text;
    if (!PeekKeyword("WHERE")) return Status::OK();
    Advance();  // WHERE
    while (true) {
      PX_RETURN_IF_ERROR(ParseBinding(query, alias1, alias2));
      if (PeekKeyword("AND")) {
        Advance();
        continue;
      }
      break;
    }
    return Status::OK();
  }

  Status ParseBinding(Query& query, const std::string& alias1,
                      const std::string& alias2) {
    if (Peek().type != TokenType::kIdent) {
      return Error("expected alias.id binding");
    }
    // The lexer folds "J1.JobID" into one identifier token.
    const std::string qualified = Advance().text;
    const std::size_t dot = qualified.find('.');
    if (dot == std::string::npos) {
      return Status::ParseError("expected alias.id binding, got '" +
                                qualified + "'");
    }
    const std::string alias = qualified.substr(0, dot);
    const std::string field = ToLower(qualified.substr(dot + 1));
    if (field != "jobid" && field != "taskid" && field != "id") {
      return Status::ParseError("bindings may only constrain JobID/TaskID/id, "
                                "got '" + qualified + "'");
    }
    if (Peek().type != TokenType::kOp || Peek().text != "=") {
      return Error("expected '=' in binding");
    }
    Advance();
    if (Peek().type != TokenType::kString &&
        Peek().type != TokenType::kIdent) {
      return Error("expected id literal in binding");
    }
    const std::string id = Advance().text;
    if (alias == alias1) {
      query.first_id = id;
    } else if (alias == alias2) {
      query.second_id = id;
    } else {
      return Status::ParseError("unknown alias '" + alias + "' in binding");
    }
    return Status::OK();
  }

  Result<Predicate> ParsePredicate() {
    if (PeekKeyword("TRUE")) {
      Advance();
      return Predicate::True();
    }
    Predicate predicate;
    while (true) {
      auto atom = ParseAtom();
      if (!atom.ok()) return atom.status();
      predicate.Append(std::move(atom).value());
      if (PeekKeyword("AND")) {
        Advance();
        continue;
      }
      break;
    }
    return predicate;
  }

  Result<Atom> ParseAtom() {
    if (Peek().type != TokenType::kIdent) {
      return Status::ParseError("expected feature name (at offset " +
                                std::to_string(Peek().offset) + ")");
    }
    const std::string feature = Advance().text;
    if (Peek().type != TokenType::kOp) {
      return Status::ParseError("expected comparison operator after '" +
                                feature + "'");
    }
    const std::string op_text = Advance().text;
    CompareOp op;
    if (op_text == "=") {
      op = CompareOp::kEq;
    } else if (op_text == "!=") {
      op = CompareOp::kNe;
    } else if (op_text == "<") {
      op = CompareOp::kLt;
    } else if (op_text == "<=") {
      op = CompareOp::kLe;
    } else if (op_text == ">") {
      op = CompareOp::kGt;
    } else if (op_text == ">=") {
      op = CompareOp::kGe;
    } else {
      return Status::ParseError("unknown operator '" + op_text + "'");
    }
    Value constant;
    const Token& token = Peek();
    if (token.type == TokenType::kNumber) {
      constant = Value::Number(token.number);
      Advance();
    } else if (token.type == TokenType::kString ||
               token.type == TokenType::kIdent) {
      constant = Value::Nominal(token.text);
      Advance();
    } else if (token.type == TokenType::kLParen) {
      // Tuple constant for diff features: (filter.pig,join.pig).
      Advance();
      std::string tuple = "(";
      bool first = true;
      while (Peek().type != TokenType::kRParen) {
        if (Peek().type == TokenType::kEnd) {
          return Status::ParseError("unterminated tuple constant");
        }
        if (!first && Peek().type == TokenType::kComma) {
          Advance();
          tuple += ",";
          continue;
        }
        tuple += Advance().text;
        first = false;
      }
      Advance();  // ')'
      tuple += ")";
      constant = Value::Nominal(tuple);
    } else {
      return Status::ParseError("expected constant after operator");
    }
    return Atom(feature, op, std::move(constant));
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Query> ParseQuery(const std::string& text) {
  auto tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.ParseQuery();
}

Result<Predicate> ParsePredicate(const std::string& text) {
  auto tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.ParsePredicateOnly();
}

}  // namespace perfxplain
