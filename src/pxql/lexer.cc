#include "pxql/lexer.h"

#include <cctype>
#include <charconv>
#include <cmath>

#include "common/string_util.h"

namespace perfxplain {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
         c == '-';
}

/// Returns the multiplier for a unit suffix, or 0 when unknown.
double UnitMultiplier(const std::string& unit) {
  const std::string u = ToLower(unit);
  if (u == "b") return 1.0;
  if (u == "kb") return 1024.0;
  if (u == "mb") return 1024.0 * 1024.0;
  if (u == "gb") return 1024.0 * 1024.0 * 1024.0;
  if (u == "tb") return 1024.0 * 1024.0 * 1024.0 * 1024.0;
  if (u == "ms") return 0.001;
  if (u == "s" || u == "sec") return 1.0;
  if (u == "min") return 60.0;
  return 0.0;
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const std::size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.offset = i;
    if (c == ',') {
      token.type = TokenType::kComma;
      token.text = ",";
      ++i;
    } else if (c == '(') {
      token.type = TokenType::kLParen;
      token.text = "(";
      ++i;
    } else if (c == ')') {
      token.type = TokenType::kRParen;
      token.text = ")";
      ++i;
    } else if (c == '=' ) {
      token.type = TokenType::kOp;
      token.text = "=";
      ++i;
      if (i < n && input[i] == '=') ++i;  // accept "==" as "="
    } else if (c == '!' && i + 1 < n && input[i + 1] == '=') {
      token.type = TokenType::kOp;
      token.text = "!=";
      i += 2;
    } else if (c == '<') {
      token.type = TokenType::kOp;
      if (i + 1 < n && input[i + 1] == '=') {
        token.text = "<=";
        i += 2;
      } else if (i + 1 < n && input[i + 1] == '>') {
        token.text = "!=";
        i += 2;
      } else {
        token.text = "<";
        ++i;
      }
    } else if (c == '>') {
      token.type = TokenType::kOp;
      if (i + 1 < n && input[i + 1] == '=') {
        token.text = ">=";
        i += 2;
      } else {
        token.text = ">";
        ++i;
      }
    } else if (c == '\'' || c == '"') {
      const char quote = c;
      ++i;
      std::string text;
      while (i < n && input[i] != quote) {
        text += input[i];
        ++i;
      }
      if (i >= n) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(token.offset));
      }
      ++i;  // closing quote
      token.type = TokenType::kString;
      token.text = std::move(text);
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      std::size_t start = i;
      if (input[i] == '-') ++i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       input[i] == '.')) {
        ++i;
      }
      // Scientific notation.
      if (i < n && (input[i] == 'e' || input[i] == 'E') && i + 1 < n &&
          (std::isdigit(static_cast<unsigned char>(input[i + 1])) ||
           input[i + 1] == '-' || input[i + 1] == '+')) {
        i += 2;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      }
      const std::string digits = input.substr(start, i - start);
      double value = 0.0;
      auto [ptr, ec] = std::from_chars(digits.data(),
                                       digits.data() + digits.size(), value);
      if (ec != std::errc() || ptr != digits.data() + digits.size()) {
        return Status::ParseError("bad numeric literal '" + digits + "'");
      }
      // Optional unit suffix directly attached (128MB) or not: only attached
      // suffixes are folded in, to avoid eating identifiers.
      std::size_t unit_start = i;
      while (i < n && std::isalpha(static_cast<unsigned char>(input[i]))) {
        ++i;
      }
      if (i > unit_start) {
        const std::string unit = input.substr(unit_start, i - unit_start);
        const double multiplier = UnitMultiplier(unit);
        if (multiplier == 0.0) {
          return Status::ParseError("unknown unit suffix '" + unit +
                                    "' at offset " +
                                    std::to_string(unit_start));
        }
        value *= multiplier;
      }
      token.type = TokenType::kNumber;
      token.number = value;
      token.text = digits;
    } else if (IsIdentStart(c)) {
      std::size_t start = i;
      while (i < n && IsIdentChar(input[i])) ++i;
      token.type = TokenType::kIdent;
      token.text = input.substr(start, i - start);
    } else {
      return Status::ParseError("unexpected character '" + std::string(1, c) +
                                "' at offset " + std::to_string(i));
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace perfxplain
