#ifndef PERFXPLAIN_PXQL_PARSER_H_
#define PERFXPLAIN_PXQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "pxql/query.h"

namespace perfxplain {

/// Parses PXQL text into a Query. The grammar (§3.2, keywords are
/// case-insensitive):
///
///   query    := [for] [despite] observed expected
///   for      := FOR ident ',' ident [WHERE binding AND binding]
///   binding  := ident '.' (JobID | TaskID | id) '=' string
///   despite  := DESPITE predicate
///   observed := OBSERVED predicate
///   expected := EXPECTED predicate
///   predicate:= TRUE | atom (AND atom)*
///   atom     := ident op constant
///   op       := '=' | '!=' | '<>' | '<' | '<=' | '>' | '>='
///   constant := number [unit] | 'string' | bare-word
///
/// Numeric literals accept KB/MB/GB/TB and ms/s/min suffixes
/// ("blocksize >= 128MB"). Bare words (SIM, T, simple-filter.pig) are
/// nominal constants.
///
/// The parsed query is *unbound*; call Query::Bind against a PairSchema
/// before evaluation.
Result<Query> ParseQuery(const std::string& text);

/// Parses a bare predicate ("a_isSame = T AND b_compare = SIM" or "true").
Result<Predicate> ParsePredicate(const std::string& text);

}  // namespace perfxplain

#endif  // PERFXPLAIN_PXQL_PARSER_H_
