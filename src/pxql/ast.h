#ifndef PERFXPLAIN_PXQL_AST_H_
#define PERFXPLAIN_PXQL_AST_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "features/pair_features.h"
#include "features/pair_schema.h"

namespace perfxplain {

/// Comparison operators supported by PXQL predicates (§3.2).
enum class CompareOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

/// Renders the operator as PXQL text ("=", "!=", "<", "<=", ">", ">=").
const char* CompareOpToString(CompareOp op);

/// Applies the operator to two doubles with plain IEEE semantics (NaN
/// fails every test except !=). The single definition shared by
/// Atom::Matches and the columnar fast paths, which must agree
/// bit-for-bit.
inline bool CompareDoubles(CompareOp op, double v, double c) {
  switch (op) {
    case CompareOp::kEq:
      return v == c;
    case CompareOp::kNe:
      return v != c;
    case CompareOp::kLt:
      return v < c;
    case CompareOp::kLe:
      return v <= c;
    case CompareOp::kGt:
      return v > c;
    case CompareOp::kGe:
      return v >= c;
  }
  return false;
}

/// An atomic predicate `feature op constant` over pair features.
///
/// Atoms are created with a feature *name* and must be bound to a PairSchema
/// (resolving the name to a pair-feature index) before evaluation.
class Atom {
 public:
  Atom() = default;
  Atom(std::string feature, CompareOp op, Value constant)
      : feature_(std::move(feature)), op_(op), constant_(std::move(constant)) {}

  /// Creates an already-bound atom (used by the explanation generators,
  /// which work directly with pair-feature indexes).
  static Atom Bound(const PairSchema& schema, std::size_t pair_index,
                    CompareOp op, Value constant);

  const std::string& feature() const { return feature_; }
  CompareOp op() const { return op_; }
  const Value& constant() const { return constant_; }

  static constexpr std::size_t kUnbound = static_cast<std::size_t>(-1);
  bool bound() const { return pair_index_ != kUnbound; }
  std::size_t pair_index() const { return pair_index_; }

  /// Resolves feature() against `schema`. Also validates that the operator
  /// makes sense for the feature's value kind (ordering operators require a
  /// numeric feature and constant).
  Status Bind(const PairSchema& schema);

  /// True when `value` satisfies this atom. Missing values satisfy no atom
  /// (an explanation mentioning a feature is inapplicable to pairs for which
  /// that feature is undefined).
  bool Matches(const Value& value) const;

  /// Evaluates against a lazy pair view (atom must be bound).
  bool Eval(const PairFeatureView& view) const {
    PX_CHECK(bound()) << "atom not bound: " << feature_;
    return Matches(view.Get(pair_index_));
  }

  /// Evaluates against a materialized pair-feature vector.
  bool Eval(const std::vector<Value>& features) const {
    PX_CHECK(bound()) << "atom not bound: " << feature_;
    PX_CHECK_LT(pair_index_, features.size());
    return Matches(features[pair_index_]);
  }

  /// PXQL text, e.g. "inputsize_compare = GT".
  std::string ToString() const;

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.feature_ == b.feature_ && a.op_ == b.op_ &&
           a.constant_ == b.constant_;
  }

 private:
  std::string feature_;
  CompareOp op_ = CompareOp::kEq;
  Value constant_;
  std::size_t pair_index_ = kUnbound;
};

/// A conjunction of atoms. The empty predicate is `true`.
class Predicate {
 public:
  Predicate() = default;
  explicit Predicate(std::vector<Atom> atoms) : atoms_(std::move(atoms)) {}

  static Predicate True() { return Predicate(); }

  bool is_true() const { return atoms_.empty(); }
  std::size_t width() const { return atoms_.size(); }
  const std::vector<Atom>& atoms() const { return atoms_; }

  void Append(Atom atom) { atoms_.push_back(std::move(atom)); }

  /// Concatenation of this predicate's atoms and `other`'s.
  Predicate And(const Predicate& other) const;

  Status Bind(const PairSchema& schema);
  bool bound() const;

  bool Eval(const PairFeatureView& view) const;
  bool Eval(const std::vector<Value>& features) const;

  /// PXQL text, e.g. "a_isSame = T AND b_compare = SIM"; "true" when empty.
  std::string ToString() const;

  friend bool operator==(const Predicate& a, const Predicate& b) {
    return a.atoms_ == b.atoms_;
  }

 private:
  std::vector<Atom> atoms_;
};

/// Sound (but incomplete) disjointness check: returns true when no pair can
/// satisfy both `a` and `b`. Used to validate Definition 1's requirement
/// that obs entails NOT exp. Detects conflicts on a shared feature:
/// contradictory equalities, equality vs. inequality, and empty numeric
/// ranges.
bool ProvablyDisjoint(const Predicate& a, const Predicate& b);

}  // namespace perfxplain

#endif  // PERFXPLAIN_PXQL_AST_H_
