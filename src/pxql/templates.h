#ifndef PERFXPLAIN_PXQL_TEMPLATES_H_
#define PERFXPLAIN_PXQL_TEMPLATES_H_

#include <string>

#include "common/status.h"
#include "pxql/query.h"

namespace perfxplain {

/// Ready-made PXQL queries for the question patterns the paper enumerates
/// (§2.2, Figure 1, §6.2). Each takes the ids of the pair of interest; the
/// returned query is unbound (call Query::Bind before use). Each template
/// propagates its parse Status instead of aborting, so a template whose
/// PXQL drifts out of sync with the grammar surfaces a ParseError with
/// the lexer/parser context intact.

/// Example 1 / Figure 1 query 1: "I expected J1 to be much slower than J2
/// (e.g., it processed more data), but their durations were similar."
Result<Query> DifferentDurationsExpected(const std::string& first_id,
                                 const std::string& second_id);

/// Example 2 / Figure 1 query 2: "I expected similar durations, but J1 was
/// much faster."
Result<Query> SameDurationsExpectedButFaster(const std::string& first_id,
                                     const std::string& second_id);

/// Example 2 variant: "I expected similar durations, but J1 was much
/// slower."
Result<Query> SameDurationsExpectedButSlower(const std::string& first_id,
                                     const std::string& second_id);

/// Example 3 / Figure 1 query 3: constrained version — "despite J1 reading
/// much more input, the durations were similar; I expected J1 slower."
Result<Query> SameDurationDespiteMoreInput(const std::string& first_id,
                                   const std::string& second_id);

/// Example 4 / Figure 1 query 4: "despite similar input and the same
/// number of instances, J1 was much faster; I expected similar durations."
Result<Query> FasterDespiteSameInputAndInstances(const std::string& first_id,
                                         const std::string& second_id);

/// §6.2 evaluation query 1 (task level): why was the last task on this
/// instance faster, despite same job, same host, similar input?
Result<Query> WhyLastTaskFaster(const std::string& first_task_id,
                        const std::string& second_task_id);

/// §6.2 evaluation query 2 (job level): why was J1 much slower, despite
/// the same Pig script on the same number of instances?
Result<Query> WhySlowerDespiteSameNumInstances(const std::string& first_id,
                                       const std::string& second_id);

}  // namespace perfxplain

#endif  // PERFXPLAIN_PXQL_TEMPLATES_H_
