#include "pxql/compiled_predicate.h"

#include <string_view>

#include "features/pair_feature_kernel.h"

namespace perfxplain {

std::int8_t IsSameConstantTarget(const Value& constant) {
  if (!constant.is_nominal()) return -2;
  if (constant.nominal() == pair_values::kTrue) return kernel::kTrueCode;
  if (constant.nominal() == pair_values::kFalse) return kernel::kFalseCode;
  return -2;
}

std::int8_t CompareConstantTarget(const Value& constant) {
  if (!constant.is_nominal()) return -2;
  if (constant.nominal() == pair_values::kLt) return kernel::kLtCode;
  if (constant.nominal() == pair_values::kSim) return kernel::kSimCode;
  if (constant.nominal() == pair_values::kGt) return kernel::kGtCode;
  return -2;
}

std::vector<std::pair<std::int32_t, std::int32_t>> DiffConstantTargets(
    const Value& constant, const StringInterner& interner) {
  std::vector<std::pair<std::int32_t, std::int32_t>> targets;
  if (!constant.is_nominal()) return targets;
  const std::string& text = constant.nominal();
  if (text.size() < 3 || text.front() != '(' || text.back() != ')') {
    return targets;
  }
  const std::string_view inner(text.data() + 1, text.size() - 2);
  for (std::size_t comma = 0; comma < inner.size(); ++comma) {
    if (inner[comma] != ',') continue;
    const std::int32_t left = interner.Lookup(inner.substr(0, comma));
    if (left == StringInterner::kNoCode) continue;
    const std::int32_t right = interner.Lookup(inner.substr(comma + 1));
    if (right == StringInterner::kNoCode) continue;
    targets.emplace_back(left, right);
  }
  return targets;
}

namespace {

/// Branchless selection append shared by the ScanColumn overloads: the
/// row index is written unconditionally and the cursor advances by the
/// test result, so the loop body is straight-line and auto-vectorizable.
template <typename Test>
void ScanColumnWith(std::size_t rows, std::vector<std::uint32_t>& out,
                    Test&& test) {
  out.resize(rows);
  std::uint32_t* dst = out.data();
  std::size_t count = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    dst[count] = static_cast<std::uint32_t>(r);
    count += static_cast<std::size_t>(test(r));
  }
  out.resize(count);
}

}  // namespace

void ScanColumnEqCode(const std::vector<std::int32_t>& codes,
                      std::int32_t target, std::vector<std::uint32_t>& out) {
  const std::int32_t* c = codes.data();
  ScanColumnWith(codes.size(), out,
                 [c, target](std::size_t r) { return c[r] == target; });
}

void ScanColumnPresentNeCode(const std::vector<std::int32_t>& codes,
                             std::int32_t excluded,
                             std::vector<std::uint32_t>& out) {
  const std::int32_t* c = codes.data();
  ScanColumnWith(codes.size(), out, [c, excluded](std::size_t r) {
    return c[r] != StringInterner::kNoCode && c[r] != excluded;
  });
}

void ScanColumnCodeIn(const std::vector<std::int32_t>& codes,
                      const std::vector<std::int32_t>& targets,
                      std::vector<std::uint32_t>& out) {
  const std::int32_t* c = codes.data();
  ScanColumnWith(codes.size(), out, [&](std::size_t r) {
    for (std::int32_t target : targets) {
      if (c[r] == target) return true;
    }
    return false;
  });
}

void ScanColumnNumCmp(const NumericColumn& column, std::size_t rows,
                      CompareOp cmp, double constant,
                      std::vector<std::uint32_t>& out) {
  ScanColumnWith(rows, out, [&](std::size_t r) {
    return column.present.Test(r) &&
           CompareDoubles(cmp, column.values[r], constant);
  });
}

PairSelection CompiledPredicate::DeriveSelection(std::size_t rows) const {
  PairSelection selection;
  if (always_false_) return selection;
  for (const PredInstr& instr : instrs_) {
    switch (instr.op) {
      case PredOp::kBaseNomEq:
        // base nominal == c holds only when both rows carry code c.
        ScanColumnEqCode(instr.nom_col->codes, instr.nom_target,
                         selection.first_rows);
        selection.second_rows = selection.first_rows;
        selection.constrained = true;
        return selection;
      case PredOp::kBaseNomNe:
        // base nominal != c needs a shared present code other than c, so
        // each row must hold a present code != c (kNoCode target — a
        // constant the dictionary never saw — degenerates to presence).
        ScanColumnPresentNeCode(instr.nom_col->codes, instr.nom_target,
                                selection.first_rows);
        selection.second_rows = selection.first_rows;
        selection.constrained = true;
        return selection;
      case PredOp::kBaseNumCmp:
        // base numeric <cmp> c requires both rows present with the same
        // value v and cmp(v, c); each row must itself be present with
        // cmp(value, c). NaN passes no CompareDoubles, matching the pair
        // test (NaN != NaN makes the base feature missing).
        ScanColumnNumCmp(*instr.num_col, rows, instr.cmp, instr.num_const,
                         selection.first_rows);
        selection.second_rows = selection.first_rows;
        selection.constrained = true;
        return selection;
      case PredOp::kDiffEq: {
        // diff == "(l,r)" pins the first row to a target left code and the
        // second row to a target right code.
        std::vector<std::int32_t> lefts;
        std::vector<std::int32_t> rights;
        lefts.reserve(instr.diff_targets.size());
        rights.reserve(instr.diff_targets.size());
        for (const auto& [left, right] : instr.diff_targets) {
          lefts.push_back(left);
          rights.push_back(right);
        }
        ScanColumnCodeIn(instr.nom_col->codes, lefts, selection.first_rows);
        ScanColumnCodeIn(instr.nom_col->codes, rights,
                         selection.second_rows);
        selection.constrained = true;
        return selection;
      }
      default:
        // isSame/compare/diff-inequality atoms relate the two rows; their
        // only per-row consequence is presence, too weak to pay for.
        continue;
    }
  }
  return selection;
}

namespace {

/// Lowers one bound atom. Unrepresentable combinations (kind mismatches,
/// constants the dictionary has never seen for equality tests, ordering
/// operators on nominal-valued features) compile to kAlwaysFalse — the
/// exact behavior of Atom::Matches, decided once instead of per pair.
PredInstr CompileAtom(const Atom& atom, const PairSchema& schema,
                      const ColumnarLog& columns) {
  PX_CHECK(atom.bound()) << "cannot compile unbound atom: " << atom.feature();
  PredInstr instr;
  const std::size_t pair_index = atom.pair_index();
  const std::size_t col = schema.RawIndexOf(pair_index);
  instr.numeric_raw = columns.is_numeric(col);
  if (instr.numeric_raw) {
    instr.num_col = &columns.numeric_column(col);
  } else {
    instr.nom_col = &columns.nominal_column(col);
  }
  const PairFeatureKind kind = schema.KindOf(pair_index);
  const Value& constant = atom.constant();
  const CompareOp op = atom.op();
  const bool ordering = op != CompareOp::kEq && op != CompareOp::kNe;

  // compare features of nominal raw features and diff features of numeric
  // raw features are always missing; missing satisfies no atom.
  if (kind == PairFeatureKind::kCompare && !instr.numeric_raw) return instr;
  if (kind == PairFeatureKind::kDiff && instr.numeric_raw) return instr;

  switch (kind) {
    case PairFeatureKind::kIsSame: {
      if (ordering) return instr;  // value is never numeric
      const std::int8_t target = IsSameConstantTarget(constant);
      if (op == CompareOp::kEq) {
        if (target < 0) return instr;  // constant can never be produced
        instr.op = PredOp::kIsSameEq;
        instr.code_target = target;
        return instr;
      }
      // Ne: nominal constants exclude their own code (or nothing, when the
      // constant is not a produced level); other kinds never match.
      if (!constant.is_nominal()) return instr;
      instr.op = PredOp::kIsSameNe;
      instr.code_target = target;  // -2 excludes nothing
      return instr;
    }
    case PairFeatureKind::kCompare: {
      if (ordering) return instr;
      const std::int8_t target = CompareConstantTarget(constant);
      if (op == CompareOp::kEq) {
        if (target < 0) return instr;
        instr.op = PredOp::kCompareEq;
        instr.code_target = target;
        return instr;
      }
      if (!constant.is_nominal()) return instr;
      instr.op = PredOp::kCompareNe;
      instr.code_target = target;
      return instr;
    }
    case PairFeatureKind::kDiff: {
      if (ordering) return instr;
      if (!constant.is_nominal()) return instr;
      instr.diff_targets = DiffConstantTargets(constant, columns.interner());
      if (op == CompareOp::kEq) {
        if (instr.diff_targets.empty()) return instr;
        instr.op = PredOp::kDiffEq;
        return instr;
      }
      instr.op = PredOp::kDiffNe;  // empty targets: any present pair matches
      return instr;
    }
    case PairFeatureKind::kBase: {
      if (instr.numeric_raw) {
        // Base numeric features admit every operator against a numeric
        // constant; any other constant kind fails Atom::Matches.
        if (!constant.is_numeric()) return instr;
        instr.op = PredOp::kBaseNumCmp;
        instr.cmp = op;
        instr.num_const = constant.number();
        return instr;
      }
      if (ordering) return instr;  // ordering needs a numeric value
      if (!constant.is_nominal()) return instr;
      const std::int32_t target = columns.interner().Lookup(
          constant.nominal());
      if (op == CompareOp::kEq) {
        if (target == StringInterner::kNoCode) return instr;
        instr.op = PredOp::kBaseNomEq;
        instr.nom_target = target;
        return instr;
      }
      instr.op = PredOp::kBaseNomNe;
      instr.nom_target = target;  // kNoCode excludes nothing
      return instr;
    }
  }
  return instr;
}

}  // namespace

CompiledPredicate CompiledPredicate::Compile(const Predicate& predicate,
                                             const PairSchema& schema,
                                             const ColumnarLog& columns) {
  CompiledPredicate compiled;
  compiled.source_ = &columns;
  for (const Atom& atom : predicate.atoms()) {
    PredInstr instr = CompileAtom(atom, schema, columns);
    if (instr.op == PredOp::kAlwaysFalse) {
      compiled.always_false_ = true;
      compiled.instrs_.clear();
      return compiled;
    }
    compiled.instrs_.push_back(std::move(instr));
  }
  return compiled;
}

bool CompiledPredicate::Eval(std::size_t i, std::size_t j,
                             double sim_fraction) const {
  if (always_false_) return false;
  for (const PredInstr& instr : instrs_) {
    bool match = false;
    switch (instr.op) {
      case PredOp::kAlwaysFalse:
        return false;
      case PredOp::kIsSameEq:
      case PredOp::kIsSameNe: {
        std::int8_t code;
        if (instr.numeric_raw) {
          const NumericColumn& c = *instr.num_col;
          code = kernel::IsSameNumeric(c.present.Test(i), c.values[i],
                                       c.present.Test(j), c.values[j],
                                       sim_fraction);
        } else {
          const NominalColumn& c = *instr.nom_col;
          code = kernel::IsSameNominal(c.codes[i], c.codes[j]);
        }
        match = instr.op == PredOp::kIsSameEq
                    ? code == instr.code_target
                    : code >= 0 && code != instr.code_target;
        break;
      }
      case PredOp::kCompareEq:
      case PredOp::kCompareNe: {
        const NumericColumn& c = *instr.num_col;
        const std::int8_t code = kernel::CompareNumeric(
            c.present.Test(i), c.values[i], c.present.Test(j), c.values[j],
            sim_fraction);
        match = instr.op == PredOp::kCompareEq
                    ? code == instr.code_target
                    : code >= 0 && code != instr.code_target;
        break;
      }
      case PredOp::kDiffEq:
      case PredOp::kDiffNe: {
        const NominalColumn& c = *instr.nom_col;
        const std::int64_t packed = kernel::DiffPacked(c.codes[i],
                                                       c.codes[j]);
        if (packed == kernel::kMissingDiff) {
          match = false;
          break;
        }
        bool in_targets = false;
        for (const auto& [left, right] : instr.diff_targets) {
          if (kernel::DiffLeft(packed) == left &&
              kernel::DiffRight(packed) == right) {
            in_targets = true;
            break;
          }
        }
        match = instr.op == PredOp::kDiffEq ? in_targets : !in_targets;
        break;
      }
      case PredOp::kBaseNomEq:
      case PredOp::kBaseNomNe: {
        const NominalColumn& c = *instr.nom_col;
        const std::int32_t code = kernel::BaseNominal(c.codes[i], c.codes[j]);
        match = instr.op == PredOp::kBaseNomEq
                    ? code != StringInterner::kNoCode &&
                          code == instr.nom_target
                    : code != StringInterner::kNoCode &&
                          code != instr.nom_target;
        break;
      }
      case PredOp::kBaseNumCmp: {
        const NumericColumn& c = *instr.num_col;
        const kernel::BaseNumericResult base = kernel::BaseNumeric(
            c.present.Test(i), c.values[i], c.present.Test(j), c.values[j]);
        match = base.present &&
                CompareDoubles(instr.cmp, base.value, instr.num_const);
        break;
      }
    }
    if (!match) return false;
  }
  return true;
}

CompiledQuery CompiledQuery::Compile(const Query& bound_query,
                                     const PairSchema& schema,
                                     const ColumnarLog& columns) {
  CompiledQuery compiled;
  compiled.despite =
      CompiledPredicate::Compile(bound_query.despite, schema, columns);
  compiled.observed =
      CompiledPredicate::Compile(bound_query.observed, schema, columns);
  compiled.expected =
      CompiledPredicate::Compile(bound_query.expected, schema, columns);
  return compiled;
}

}  // namespace perfxplain
