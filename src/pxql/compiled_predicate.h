#ifndef PERFXPLAIN_PXQL_COMPILED_PREDICATE_H_
#define PERFXPLAIN_PXQL_COMPILED_PREDICATE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "features/pair_schema.h"
#include "log/columnar.h"
#include "pxql/ast.h"
#include "pxql/query.h"

namespace perfxplain {

/// Opcode of one lowered PXQL atom. Atoms over pair features reduce, per
/// Table 1 feature kind and constant type, to integer-code or double
/// comparisons directly against the raw columns — no Value is ever built.
enum class PredOp : std::uint8_t {
  kAlwaysFalse,  ///< statically unsatisfiable (kind mismatch, unknown level,
                 ///< constant absent from the dictionary, ...)
  kIsSameEq,     ///< isSame code == code_target
  kIsSameNe,     ///< isSame code present && != code_target
  kCompareEq,    ///< compare code == code_target
  kCompareNe,    ///< compare code present && != code_target
  kDiffEq,       ///< diff packed pair in diff_targets
  kDiffNe,       ///< diff present && packed pair not in diff_targets
  kBaseNomEq,    ///< base nominal code == nom_target
  kBaseNomNe,    ///< base nominal code present && != nom_target
  kBaseNumCmp,   ///< base numeric present && value <cmp> num_const
};

/// One flat instruction of a compiled predicate program. The column
/// pointers are resolved at compile time (a program is only valid for the
/// ColumnarLog it was compiled against), so evaluation does zero lookups.
struct PredInstr {
  PredOp op = PredOp::kAlwaysFalse;
  CompareOp cmp = CompareOp::kEq;  ///< for kBaseNumCmp
  bool numeric_raw = false;        ///< isSame kernel selector
  const NumericColumn* num_col = nullptr;
  const NominalColumn* nom_col = nullptr;
  std::int8_t code_target = -1;    ///< isSame/compare constant code
  std::int32_t nom_target = StringInterner::kNoCode;
  double num_const = 0.0;
  /// Interned (left, right) pairs whose diff string equals the constant.
  std::vector<std::pair<std::int32_t, std::int32_t>> diff_targets;
};

/// Column-level selection vectors derived from one compiled predicate: a
/// sound per-row pre-filter for the ordered-pair scans. When `constrained`
/// is true, every ordered pair (i, j) that can satisfy the predicate has
/// i in `first_rows` and j in `second_rows` (both ascending), so a scan
/// may enumerate |first| × |second| candidate pairs instead of n² —
/// pruned pairs are all unrelated and contribute to no tally, keeping
/// results bitwise identical to the full scan. When false, no atom
/// admitted a single-column test and callers scan all pairs.
struct PairSelection {
  bool constrained = false;
  std::vector<std::uint32_t> first_rows;
  std::vector<std::uint32_t> second_rows;
};

/// Single-column selection scans over dictionary codes / numeric columns —
/// the ScanColumn fast path behind CompiledPredicate::DeriveSelection.
/// Each overwrites `out` with the ascending rows passing the test, using a
/// branchless append (out[count] = r; count += test) so the loop
/// auto-vectorizes. Exposed for tests and reuse.
void ScanColumnEqCode(const std::vector<std::int32_t>& codes,
                      std::int32_t target, std::vector<std::uint32_t>& out);
void ScanColumnPresentNeCode(const std::vector<std::int32_t>& codes,
                             std::int32_t excluded,
                             std::vector<std::uint32_t>& out);
void ScanColumnCodeIn(const std::vector<std::int32_t>& codes,
                      const std::vector<std::int32_t>& targets,
                      std::vector<std::uint32_t>& out);
void ScanColumnNumCmp(const NumericColumn& column, std::size_t rows,
                      CompareOp cmp, double constant,
                      std::vector<std::uint32_t>& out);

/// A conjunction of PXQL atoms lowered to a flat opcode program over the
/// columns of one ColumnarLog. Programs are only valid for the log (and the
/// interner) they were compiled against.
///
/// Semantics are pinned to the lazy path: for every ordered pair (i, j) of
/// the compiled-against log, Eval(i, j, f) == predicate.Eval(view) for the
/// PairFeatureView of (row i, row j) — including missing-value atoms
/// (missing satisfies no atom, not even Ne) and NaN arithmetic. An atom no
/// pair can ever satisfy (kind mismatch, ordering operator on a nominal
/// value, constant absent from the dictionary) makes the whole program
/// always_false() at compile time, so scans skip it without visiting any
/// pair.
///
/// Thread safety: immutable after Compile; Eval is const and lock-free, so
/// one program may be evaluated from any number of row-stripe workers
/// concurrently.
class CompiledPredicate {
 public:
  /// Lowers `predicate` (all atoms bound to `schema`) against `columns`.
  static CompiledPredicate Compile(const Predicate& predicate,
                                   const PairSchema& schema,
                                   const ColumnarLog& columns);

  /// True when no pair can satisfy the predicate, decided at compile time.
  bool always_false() const { return always_false_; }
  std::size_t width() const { return instrs_.size(); }

  /// The ColumnarLog the program was compiled against. Row indexes passed
  /// to Eval must refer to this log; the instructions hold raw pointers
  /// into its columns.
  const ColumnarLog* source() const { return source_; }

  /// Evaluates the program for the ordered pair of rows (i, j) of the
  /// compiled-against log. Exactly equivalent to Predicate::Eval over a
  /// lazy PairFeatureView, without materializing any Value.
  bool Eval(std::size_t i, std::size_t j, double sim_fraction) const;

  /// Compiles the program's first deterministic atom — the first
  /// instruction whose pair test implies a per-row, single-column
  /// necessary condition — into selection vectors via the ScanColumn fast
  /// path, in O(rows):
  ///  - base atoms (kBaseNomEq/kBaseNomNe/kBaseNumCmp) require both rows
  ///    to carry the same qualifying value, so one column scan constrains
  ///    both sides;
  ///  - diff-equality atoms (kDiffEq) constrain the first row to the
  ///    target pairs' left codes and the second row to their right codes.
  /// isSame/compare/diff-inequality atoms relate the two rows and admit no
  /// useful single-row test; a program made only of those (or an
  /// always-false one) returns an unconstrained selection. `rows` must be
  /// the compiled-against log's row count.
  PairSelection DeriveSelection(std::size_t rows) const;

 private:
  std::vector<PredInstr> instrs_;
  bool always_false_ = false;
  const ColumnarLog* source_ = nullptr;
};

/// Kernel code of an isSame constant: "T"/"F" -> kTrueCode/kFalseCode,
/// anything else -> -2 (never equal to a produced code). Shared by the
/// predicate compiler and the encoded atom tests so the lowering of the
/// categorical domains has a single definition.
std::int8_t IsSameConstantTarget(const Value& constant);

/// Kernel code of a compare constant: "LT"/"SIM"/"GT" -> 0/1/2, anything
/// else -> -2.
std::int8_t CompareConstantTarget(const Value& constant);

/// All interned (left, right) code pairs whose "(left,right)" diff
/// rendering equals `constant`. A nominal value may itself contain commas,
/// so several splits of the constant can resolve; each match contributes
/// one pair. Shared by the predicate compiler and the encoded atom tests.
std::vector<std::pair<std::int32_t, std::int32_t>> DiffConstantTargets(
    const Value& constant, const StringInterner& interner);

/// A bound Query's three predicates (despite / observed / expected),
/// compiled against one ColumnarLog. The unit ClassifyPairCompiled and the
/// techniques consume: des first (so unrelated pairs cost only the des
/// atoms), then obs/exp for the Definition 8/9 label. Same lifetime and
/// thread-safety rules as CompiledPredicate.
struct CompiledQuery {
  CompiledPredicate despite;
  CompiledPredicate observed;
  CompiledPredicate expected;

  static CompiledQuery Compile(const Query& bound_query,
                               const PairSchema& schema,
                               const ColumnarLog& columns);
};

}  // namespace perfxplain

#endif  // PERFXPLAIN_PXQL_COMPILED_PREDICATE_H_
