#ifndef PERFXPLAIN_PXQL_QUERY_H_
#define PERFXPLAIN_PXQL_QUERY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "pxql/ast.h"

namespace perfxplain {

/// A PXQL query (Definition 1): a pair of executions of interest and a
/// triple of predicates (despite, observed, expected) over their pair
/// features. The despite clause is optional (true when omitted).
struct Query {
  /// Ids of the pair of interest (J1, J2) from the FOR ... WHERE clause.
  /// May be empty when the pair is supplied programmatically.
  std::string first_id;
  std::string second_id;

  Predicate despite;   ///< des — why the user is surprised
  Predicate observed;  ///< obs — what actually happened
  Predicate expected;  ///< exp — what the user anticipated

  /// Binds all three predicates to `schema`.
  Status Bind(const PairSchema& schema);

  /// Structural validation per Definition 1: observed and expected must be
  /// non-empty and provably disjoint (obs entails NOT exp).
  Status Validate() const;

  /// PXQL text form (FOR clause included only when ids are set).
  std::string ToString() const;
};

/// Mask (one flag per raw feature) of the features a bound query's
/// observed/expected clauses mention — the runtime metric itself, which
/// never belongs in an explanation. Shared by the explainer and both
/// baselines.
std::vector<bool> OutcomeRawFeatureMask(const Query& bound_query,
                                        const PairSchema& schema);

}  // namespace perfxplain

#endif  // PERFXPLAIN_PXQL_QUERY_H_
