#include "pxql/templates.h"

#include "common/logging.h"
#include "pxql/parser.h"

namespace perfxplain {

namespace {

Query MustParseWithIds(const std::string& text, const std::string& first_id,
                       const std::string& second_id) {
  auto query = ParseQuery(text);
  PX_CHECK(query.ok()) << query.status().ToString();
  query->first_id = first_id;
  query->second_id = second_id;
  return std::move(query).value();
}

}  // namespace

Query DifferentDurationsExpected(const std::string& first_id,
                                 const std::string& second_id) {
  return MustParseWithIds(
      "OBSERVED duration_compare = SIM EXPECTED duration_compare = GT",
      first_id, second_id);
}

Query SameDurationsExpectedButFaster(const std::string& first_id,
                                     const std::string& second_id) {
  return MustParseWithIds(
      "OBSERVED duration_compare = LT EXPECTED duration_compare = SIM",
      first_id, second_id);
}

Query SameDurationsExpectedButSlower(const std::string& first_id,
                                     const std::string& second_id) {
  return MustParseWithIds(
      "OBSERVED duration_compare = GT EXPECTED duration_compare = SIM",
      first_id, second_id);
}

Query SameDurationDespiteMoreInput(const std::string& first_id,
                                   const std::string& second_id) {
  return MustParseWithIds(
      "DESPITE inputsize_compare = GT "
      "OBSERVED duration_compare = SIM EXPECTED duration_compare = GT",
      first_id, second_id);
}

Query FasterDespiteSameInputAndInstances(const std::string& first_id,
                                         const std::string& second_id) {
  return MustParseWithIds(
      "DESPITE inputsize_compare = SIM AND numinstances_isSame = T "
      "OBSERVED duration_compare = LT EXPECTED duration_compare = SIM",
      first_id, second_id);
}

Query WhyLastTaskFaster(const std::string& first_task_id,
                        const std::string& second_task_id) {
  return MustParseWithIds(
      "DESPITE jobID_isSame = T AND inputsize_compare = SIM AND "
      "hostname_isSame = T "
      "OBSERVED duration_compare = LT EXPECTED duration_compare = SIM",
      first_task_id, second_task_id);
}

Query WhySlowerDespiteSameNumInstances(const std::string& first_id,
                                       const std::string& second_id) {
  return MustParseWithIds(
      "DESPITE numinstances_isSame = T AND pigscript_isSame = T "
      "OBSERVED duration_compare = GT EXPECTED duration_compare = SIM",
      first_id, second_id);
}

}  // namespace perfxplain
