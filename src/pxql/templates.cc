#include "pxql/templates.h"

#include "pxql/parser.h"

namespace perfxplain {

namespace {

Result<Query> ParseWithIds(const std::string& text,
                           const std::string& first_id,
                           const std::string& second_id) {
  auto query = ParseQuery(text);
  if (!query.ok()) return query.status();
  query->first_id = first_id;
  query->second_id = second_id;
  return std::move(query).value();
}

}  // namespace

Result<Query> DifferentDurationsExpected(const std::string& first_id,
                                 const std::string& second_id) {
  return ParseWithIds(
      "OBSERVED duration_compare = SIM EXPECTED duration_compare = GT",
      first_id, second_id);
}

Result<Query> SameDurationsExpectedButFaster(const std::string& first_id,
                                     const std::string& second_id) {
  return ParseWithIds(
      "OBSERVED duration_compare = LT EXPECTED duration_compare = SIM",
      first_id, second_id);
}

Result<Query> SameDurationsExpectedButSlower(const std::string& first_id,
                                     const std::string& second_id) {
  return ParseWithIds(
      "OBSERVED duration_compare = GT EXPECTED duration_compare = SIM",
      first_id, second_id);
}

Result<Query> SameDurationDespiteMoreInput(const std::string& first_id,
                                   const std::string& second_id) {
  return ParseWithIds(
      "DESPITE inputsize_compare = GT "
      "OBSERVED duration_compare = SIM EXPECTED duration_compare = GT",
      first_id, second_id);
}

Result<Query> FasterDespiteSameInputAndInstances(const std::string& first_id,
                                         const std::string& second_id) {
  return ParseWithIds(
      "DESPITE inputsize_compare = SIM AND numinstances_isSame = T "
      "OBSERVED duration_compare = LT EXPECTED duration_compare = SIM",
      first_id, second_id);
}

Result<Query> WhyLastTaskFaster(const std::string& first_task_id,
                        const std::string& second_task_id) {
  return ParseWithIds(
      "DESPITE jobID_isSame = T AND inputsize_compare = SIM AND "
      "hostname_isSame = T "
      "OBSERVED duration_compare = LT EXPECTED duration_compare = SIM",
      first_task_id, second_task_id);
}

Result<Query> WhySlowerDespiteSameNumInstances(const std::string& first_id,
                                       const std::string& second_id) {
  return ParseWithIds(
      "DESPITE numinstances_isSame = T AND pigscript_isSame = T "
      "OBSERVED duration_compare = GT EXPECTED duration_compare = SIM",
      first_id, second_id);
}

}  // namespace perfxplain
