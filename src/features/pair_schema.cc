#include "features/pair_schema.h"

#include "common/string_util.h"

namespace perfxplain {

PairSchema::PairSchema(Schema raw) : raw_(std::move(raw)) {}

std::size_t PairSchema::IndexOf(PairFeatureKind kind,
                                std::size_t raw_i) const {
  PX_CHECK_LT(raw_i, raw_.size());
  return static_cast<std::size_t>(kind) * raw_.size() + raw_i;
}

PairFeatureKind PairSchema::KindOf(std::size_t pair_index) const {
  PX_CHECK_LT(pair_index, size());
  return static_cast<PairFeatureKind>(pair_index / raw_.size());
}

std::size_t PairSchema::RawIndexOf(std::size_t pair_index) const {
  PX_CHECK_LT(pair_index, size());
  return pair_index % raw_.size();
}

std::string PairSchema::NameOf(std::size_t pair_index) const {
  const std::string& raw_name = raw_.at(RawIndexOf(pair_index)).name;
  switch (KindOf(pair_index)) {
    case PairFeatureKind::kIsSame:
      return raw_name + "_isSame";
    case PairFeatureKind::kCompare:
      return raw_name + "_compare";
    case PairFeatureKind::kDiff:
      return raw_name + "_diff";
    case PairFeatureKind::kBase:
      return raw_name;
  }
  return raw_name;
}

ValueKind PairSchema::ValueKindOf(std::size_t pair_index) const {
  if (KindOf(pair_index) == PairFeatureKind::kBase) {
    return raw_.at(RawIndexOf(pair_index)).kind;
  }
  return ValueKind::kNominal;
}

Result<std::size_t> PairSchema::Resolve(const std::string& name) const {
  PairFeatureKind kind = PairFeatureKind::kBase;
  std::string raw_name = name;
  if (EndsWith(name, "_isSame")) {
    kind = PairFeatureKind::kIsSame;
    raw_name = name.substr(0, name.size() - 7);
  } else if (EndsWith(name, "_compare")) {
    kind = PairFeatureKind::kCompare;
    raw_name = name.substr(0, name.size() - 8);
  } else if (EndsWith(name, "_diff")) {
    kind = PairFeatureKind::kDiff;
    raw_name = name.substr(0, name.size() - 5);
  }
  const std::size_t raw_i = raw_.IndexOf(raw_name);
  if (raw_i == Schema::kNotFound) {
    // A raw feature could itself end in "_diff" etc.; fall back to treating
    // the full name as a base feature before failing.
    const std::size_t base_i = raw_.IndexOf(name);
    if (base_i != Schema::kNotFound) {
      return IndexOf(PairFeatureKind::kBase, base_i);
    }
    return Status::NotFound("no such pair feature: " + name);
  }
  return IndexOf(kind, raw_i);
}

bool PairSchema::InLevel(std::size_t pair_index, FeatureLevel level) const {
  switch (KindOf(pair_index)) {
    case PairFeatureKind::kIsSame:
      return true;
    case PairFeatureKind::kCompare:
    case PairFeatureKind::kDiff:
      return level >= FeatureLevel::kLevel2;
    case PairFeatureKind::kBase:
      return level >= FeatureLevel::kLevel3;
  }
  return false;
}

bool PairSchema::IsDefined(std::size_t pair_index) const {
  const ValueKind raw_kind = raw_.at(RawIndexOf(pair_index)).kind;
  switch (KindOf(pair_index)) {
    case PairFeatureKind::kIsSame:
    case PairFeatureKind::kBase:
      return true;
    case PairFeatureKind::kCompare:
      return raw_kind == ValueKind::kNumeric;
    case PairFeatureKind::kDiff:
      return raw_kind == ValueKind::kNominal;
  }
  return false;
}

namespace pair_values {

const Value& TrueValue() {
  static const Value value = Value::Nominal(kTrue);
  return value;
}
const Value& FalseValue() {
  static const Value value = Value::Nominal(kFalse);
  return value;
}
const Value& LtValue() {
  static const Value value = Value::Nominal(kLt);
  return value;
}
const Value& SimValue() {
  static const Value value = Value::Nominal(kSim);
  return value;
}
const Value& GtValue() {
  static const Value value = Value::Nominal(kGt);
  return value;
}

}  // namespace pair_values

}  // namespace perfxplain
