#ifndef PERFXPLAIN_FEATURES_LRU_REPLACER_H_
#define PERFXPLAIN_FEATURES_LRU_REPLACER_H_

#include <cstddef>
#include <vector>

namespace perfxplain {

/// Victim selection for a fixed set of buffer frames — the classic
/// buffer-pool lru_replacer, specialized for TilePool's scan-heavy access
/// pattern. A frame is *tracked* (evictable) between Unpin and the next
/// Pin/Victim that removes it; Victim pops the cold end of an intrusive
/// doubly-linked list over frame indexes, so every operation is O(1) with
/// no per-operation allocation.
///
/// Two insertion points make the policy scan-resistant: Unpin(frame,
/// /*hot=*/true) — a tile that was re-referenced after its build — inserts
/// at the warm (most-recently-used) end like plain LRU, while
/// Unpin(frame, /*hot=*/false) — a first-touch build that no later fetch
/// has hit yet — inserts at the cold end, making the frame the next
/// victim. Under a repeated sweep whose working set exceeds capacity this
/// keeps a stable resident prefix and recycles one revolving frame,
/// instead of plain LRU's zero-hit sequential flooding; once a working
/// set fits, every frame is hot and the policy is exactly LRU.
///
/// Not internally synchronized: TilePool guards its replacer with the
/// pool mutex (the member is PX_GUARDED_BY there), like every buffer-pool
/// manager does. Purely index-based and deterministic: the victim
/// sequence is a function of the Pin/Unpin call sequence alone.
class LruReplacer {
 public:
  /// Tracks frames [0, frames); all start untracked (pinned or free).
  explicit LruReplacer(std::size_t frames);

  /// Removes `frame` from the evictable set (a fetch pinned it). No-op
  /// when the frame is not tracked.
  void Pin(std::size_t frame);

  /// Adds `frame` to the evictable set (its pin count reached zero). Hot
  /// frames go to the warm end, cold (never re-referenced) frames to the
  /// cold end — see the class comment. No-op when already tracked.
  void Unpin(std::size_t frame, bool hot);

  /// Pops the cold-end victim into `*frame`. False when no frame is
  /// evictable (all pinned or free).
  bool Victim(std::size_t* frame);

  /// Number of evictable frames.
  std::size_t size() const { return size_; }

 private:
  /// Intrusive list over frame indexes; index frames_ is the sentinel
  /// (sentinel->next = cold end, sentinel->prev = warm end).
  std::size_t sentinel() const { return prev_.size() - 1; }
  void Unlink(std::size_t frame);

  std::vector<std::size_t> prev_;
  std::vector<std::size_t> next_;
  std::vector<bool> tracked_;
  std::size_t size_ = 0;
};

}  // namespace perfxplain

#endif  // PERFXPLAIN_FEATURES_LRU_REPLACER_H_
