#ifndef PERFXPLAIN_FEATURES_PAIR_SCHEMA_H_
#define PERFXPLAIN_FEATURES_PAIR_SCHEMA_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "log/schema.h"

namespace perfxplain {

/// Category of a pair feature, Table 1 of the paper. For k raw features a
/// training example has 4*k features spanning general (isSame) to specific
/// (base) resolutions.
enum class PairFeatureKind : int {
  kIsSame = 0,   ///< fi_isSame in {T, F}: do the two executions agree on fi?
  kCompare = 1,  ///< fi_compare in {LT, SIM, GT}; numeric raw features only.
  kDiff = 2,     ///< fi_diff = "(v1,v2)"; nominal raw features only.
  kBase = 3,     ///< fi copied from the executions when they agree on fi.
};

/// Feature-set levels from §6.8 of the paper.
enum class FeatureLevel : int {
  kLevel1 = 1,  ///< isSame features only.
  kLevel2 = 2,  ///< isSame + compare + diff.
  kLevel3 = 3,  ///< everything including base features.
};

/// The schema of training examples (pairs of executions): for every raw
/// feature f it contains f_isSame, f_compare, f_diff and the base feature f,
/// laid out as four contiguous blocks of k entries each:
///   [0, k)    isSame
///   [k, 2k)   compare
///   [2k, 3k)  diff
///   [3k, 4k)  base
class PairSchema {
 public:
  explicit PairSchema(Schema raw);

  const Schema& raw() const { return raw_; }
  std::size_t raw_size() const { return raw_.size(); }
  std::size_t size() const { return 4 * raw_.size(); }

  /// Index of the pair feature of `kind` derived from raw feature `raw_i`.
  std::size_t IndexOf(PairFeatureKind kind, std::size_t raw_i) const;

  /// Inverse of IndexOf.
  PairFeatureKind KindOf(std::size_t pair_index) const;
  std::size_t RawIndexOf(std::size_t pair_index) const;

  /// Pair-feature name: "f_isSame", "f_compare", "f_diff" or plain "f".
  std::string NameOf(std::size_t pair_index) const;

  /// Value kind of the pair feature: isSame/compare/diff are nominal, base
  /// features keep the raw feature's kind.
  ValueKind ValueKindOf(std::size_t pair_index) const;

  /// Resolves a pair-feature name ("inputsize_compare", "pigscript", ...).
  Result<std::size_t> Resolve(const std::string& name) const;

  /// True when `pair_index` belongs to feature set `level` (§6.8).
  bool InLevel(std::size_t pair_index, FeatureLevel level) const;

  /// True when the pair feature can ever be non-missing: compare features
  /// exist only for numeric raw features and diff features only for nominal
  /// raw features.
  bool IsDefined(std::size_t pair_index) const;

 private:
  Schema raw_;
};

/// Canonical nominal values of isSame and compare features.
namespace pair_values {

inline constexpr const char kTrue[] = "T";
inline constexpr const char kFalse[] = "F";
inline constexpr const char kLt[] = "LT";
inline constexpr const char kSim[] = "SIM";
inline constexpr const char kGt[] = "GT";

/// Shared interned Values of the fixed categorical levels. Copying one is
/// allocation-free (the payloads fit the small-string buffer), so per-pair
/// feature computation never heap-allocates for these.
const Value& TrueValue();
const Value& FalseValue();
const Value& LtValue();
const Value& SimValue();
const Value& GtValue();
inline const Value& BooleanValue(bool v) {
  return v ? TrueValue() : FalseValue();
}

}  // namespace pair_values

}  // namespace perfxplain

#endif  // PERFXPLAIN_FEATURES_PAIR_SCHEMA_H_
