#include "features/pair_feature_kernel.h"

#include "common/logging.h"

namespace perfxplain {

namespace kernel {

PackedIsSameCodes PackIsSameCodes(const RawColumnTable& table, std::size_t i,
                                  std::size_t j, double sim_fraction) {
  PackedIsSameCodes packed(table.size());
  for (std::size_t f = 0; f < table.size(); ++f) {
    packed.SetCode(f, table.IsSame(f, i, j, sim_fraction));
  }
  return packed;
}

void PackIsSameCodesInto(const RawColumnTable& table, std::size_t i,
                         std::size_t j, double sim_fraction,
                         PackedIsSameCodes* packed) {
  PX_CHECK_EQ(packed->features(), table.size());
  for (std::size_t f = 0; f < table.size(); ++f) {
    packed->SetCode(f, table.IsSame(f, i, j, sim_fraction));
  }
}

void PackIsSameCodesRaw(const RawColumnTable& table, std::size_t i,
                        std::size_t j, double sim_fraction,
                        std::uint64_t* words) {
  const std::size_t k = table.size();
  const std::size_t word_count =
      (k + kPackedFeaturesPerWord - 1) / kPackedFeaturesPerWord;
  std::size_t f = 0;
  for (std::size_t w = 0; w < word_count; ++w) {
    std::uint64_t word = 0;
    const std::size_t word_end = std::min(k, (w + 1) * kPackedFeaturesPerWord);
    std::size_t shift = 0;
    for (; f < word_end; ++f, shift += 2) {
      word |= PackedField(table.IsSame(f, i, j, sim_fraction)) << shift;
    }
    words[w] = word;
  }
}

std::size_t CountPackedDisagreements(const PackedIsSameCodes& a,
                                     const PackedIsSameCodes& b) {
  PX_CHECK_EQ(a.features(), b.features());
  std::size_t disagree = 0;
  for (std::size_t w = 0; w < a.word_count(); ++w) {
    disagree +=
        static_cast<std::size_t>(PopCount(PackedDisagreeMask(a.word(w),
                                                             b.word(w))));
  }
  return disagree;
}

void AppendMaskedFeatures(const std::uint64_t* diff_masks,
                          std::size_t word_count,
                          std::vector<std::size_t>& out) {
  for (std::size_t w = 0; w < word_count; ++w) {
    const std::size_t base = w * kPackedFeaturesPerWord;
    for (std::uint64_t mask = diff_masks[w]; mask != 0; mask &= mask - 1) {
      out.push_back(base +
                    static_cast<std::size_t>(CountTrailingZeros(mask)) / 2);
    }
  }
}

}  // namespace kernel

Value DecodeIsSame(std::int8_t code) {
  if (code == kernel::kMissingCode) return Value::Missing();
  return pair_values::BooleanValue(code == kernel::kTrueCode);
}

Value DecodeCompare(std::int8_t code) {
  switch (code) {
    case kernel::kLtCode:
      return pair_values::LtValue();
    case kernel::kSimCode:
      return pair_values::SimValue();
    case kernel::kGtCode:
      return pair_values::GtValue();
    default:
      return Value::Missing();
  }
}

Value DecodeDiff(std::int64_t packed, const StringInterner& interner) {
  if (packed == kernel::kMissingDiff) return Value::Missing();
  return Value::Nominal("(" + interner.StringOf(kernel::DiffLeft(packed)) +
                        "," + interner.StringOf(kernel::DiffRight(packed)) +
                        ")");
}

Value DecodeBaseNominal(std::int32_t code, const StringInterner& interner) {
  if (code == StringInterner::kNoCode) return Value::Missing();
  return Value::Nominal(interner.StringOf(code));
}

Value ComputePairFeatureColumnar(const ColumnarLog& columns,
                                 const PairSchema& schema, std::size_t i,
                                 std::size_t j, std::size_t pair_index,
                                 double sim_fraction) {
  const std::size_t col = schema.RawIndexOf(pair_index);
  const bool numeric = columns.is_numeric(col);
  switch (schema.KindOf(pair_index)) {
    case PairFeatureKind::kIsSame: {
      if (numeric) {
        const NumericColumn& c = columns.numeric_column(col);
        return DecodeIsSame(kernel::IsSameNumeric(
            c.present.Test(i), c.values[i], c.present.Test(j), c.values[j],
            sim_fraction));
      }
      const NominalColumn& c = columns.nominal_column(col);
      return DecodeIsSame(kernel::IsSameNominal(c.codes[i], c.codes[j]));
    }
    case PairFeatureKind::kCompare: {
      if (!numeric) return Value::Missing();
      const NumericColumn& c = columns.numeric_column(col);
      return DecodeCompare(kernel::CompareNumeric(
          c.present.Test(i), c.values[i], c.present.Test(j), c.values[j],
          sim_fraction));
    }
    case PairFeatureKind::kDiff: {
      if (numeric) return Value::Missing();
      const NominalColumn& c = columns.nominal_column(col);
      return DecodeDiff(kernel::DiffPacked(c.codes[i], c.codes[j]),
                        columns.interner());
    }
    case PairFeatureKind::kBase: {
      if (numeric) {
        const NumericColumn& c = columns.numeric_column(col);
        const kernel::BaseNumericResult base = kernel::BaseNumeric(
            c.present.Test(i), c.values[i], c.present.Test(j), c.values[j]);
        if (!base.present) return Value::Missing();
        return Value::Number(base.value);
      }
      const NominalColumn& c = columns.nominal_column(col);
      return DecodeBaseNominal(kernel::BaseNominal(c.codes[i], c.codes[j]),
                               columns.interner());
    }
  }
  return Value::Missing();
}

}  // namespace perfxplain
