#ifndef PERFXPLAIN_FEATURES_PAIR_FEATURES_H_
#define PERFXPLAIN_FEATURES_PAIR_FEATURES_H_

#include <cstddef>
#include <vector>

#include "common/value.h"
#include "features/pair_schema.h"
#include "log/execution_log.h"

namespace perfxplain {

/// Tunables for pair-feature computation.
struct PairFeatureOptions {
  /// Two numeric values are "similar" (compare = SIM, isSame = T) when they
  /// are within this fraction of one another (footnote 1 of the paper uses
  /// 10%).
  double sim_fraction = 0.10;
};

/// Computes the single pair feature `pair_index` (per Table 1) for the
/// ordered pair of executions (a, b):
///  - f_isSame: "T"/"F". Nominal raw features compare exactly; numeric raw
///    features use the similarity tolerance (continuous metrics are never
///    bitwise equal, so exact equality would make every isSame feature
///    trivially "F"). Missing raw values yield a missing pair value.
///  - f_compare: "LT"/"SIM"/"GT" comparing a.f against b.f; missing for
///    nominal raw features or missing inputs.
///  - f_diff: "(a.f,b.f)"; missing for numeric raw features.
///  - f (base): a.f when a.f = b.f exactly, otherwise missing.
Value ComputePairFeature(const PairSchema& schema, const ExecutionRecord& a,
                         const ExecutionRecord& b, std::size_t pair_index,
                         const PairFeatureOptions& options);

/// Lazy view over the pair features of one ordered pair (a, b). Predicates
/// evaluate through this view, so enumerating millions of candidate pairs
/// touches only the features the predicates mention.
class PairFeatureView {
 public:
  PairFeatureView(const PairSchema* schema, const ExecutionRecord* a,
                  const ExecutionRecord* b, const PairFeatureOptions* options)
      : schema_(schema), a_(a), b_(b), options_(options) {}

  const PairSchema& schema() const { return *schema_; }
  const ExecutionRecord& first() const { return *a_; }
  const ExecutionRecord& second() const { return *b_; }

  /// Value of pair feature `pair_index`, computed on demand.
  Value Get(std::size_t pair_index) const {
    return ComputePairFeature(*schema_, *a_, *b_, pair_index, *options_);
  }

  /// Materializes the full 4k-wide feature vector of Table 1.
  std::vector<Value> Materialize() const;

 private:
  const PairSchema* schema_;
  const ExecutionRecord* a_;
  const ExecutionRecord* b_;
  const PairFeatureOptions* options_;
};

/// A materialized training example: an ordered pair of record indexes into
/// the originating log plus its full pair-feature vector and class label
/// ("performed as observed" vs. "performed as expected", Definitions 8/9).
struct TrainingExample {
  std::size_t first = 0;
  std::size_t second = 0;
  bool observed = false;
  std::vector<Value> features;
};

}  // namespace perfxplain

#endif  // PERFXPLAIN_FEATURES_PAIR_FEATURES_H_
