#include "features/lru_replacer.h"

#include "common/logging.h"

namespace perfxplain {

LruReplacer::LruReplacer(std::size_t frames)
    : prev_(frames + 1), next_(frames + 1), tracked_(frames + 1, false) {
  prev_[sentinel()] = sentinel();
  next_[sentinel()] = sentinel();
}

void LruReplacer::Unlink(std::size_t frame) {
  next_[prev_[frame]] = next_[frame];
  prev_[next_[frame]] = prev_[frame];
}

void LruReplacer::Pin(std::size_t frame) {
  PX_CHECK(frame < sentinel());
  if (!tracked_[frame]) return;
  Unlink(frame);
  tracked_[frame] = false;
  --size_;
}

void LruReplacer::Unpin(std::size_t frame, bool hot) {
  PX_CHECK(frame < sentinel());
  if (tracked_[frame]) return;
  if (hot) {
    // Warm end: evicted last, like plain LRU's most-recently-used slot.
    prev_[frame] = prev_[sentinel()];
    next_[frame] = sentinel();
    next_[prev_[sentinel()]] = frame;
    prev_[sentinel()] = frame;
  } else {
    // Cold end: the next victim — first-touch builds must not flush the
    // re-referenced resident set (see class comment).
    next_[frame] = next_[sentinel()];
    prev_[frame] = sentinel();
    prev_[next_[sentinel()]] = frame;
    next_[sentinel()] = frame;
  }
  tracked_[frame] = true;
  ++size_;
}

bool LruReplacer::Victim(std::size_t* frame) {
  if (size_ == 0) return false;
  const std::size_t victim = next_[sentinel()];
  Unlink(victim);
  tracked_[victim] = false;
  --size_;
  *frame = victim;
  return true;
}

}  // namespace perfxplain
