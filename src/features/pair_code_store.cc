#include "features/pair_code_store.h"

#include <algorithm>
#include <exception>
#include <thread>

#include "common/cancel.h"
#include "common/logging.h"

namespace perfxplain {

namespace {

/// Runs body(row_begin, row_end) over contiguous row stripes on
/// `threads` workers (0 = hardware concurrency). Local to the store so
/// the features layer does not depend on core/pair_enumeration; every
/// (i, j) slot is written by exactly one stripe with a pure function of
/// the immutable columns, so the built data is identical for every
/// stripe count. The calling thread's ExecContext is re-installed in each
/// worker, and an exception from any stripe (a cancellation checkpoint
/// firing mid-build) is rethrown on the calling thread after all workers
/// join. Like core/pair_enumeration's ForEachRowStripe, the workers share
/// no mutable state (disjoint tile ranges, join-ordered publication), so
/// the thread-safety analysis has nothing to check here; TSan covers the
/// handoff.
template <typename Body>
void ForEachRowStripeLocal(std::size_t rows, int threads, Body&& body) {
  std::size_t stripes = threads > 0
                            ? static_cast<std::size_t>(threads)
                            : std::thread::hardware_concurrency();
  if (stripes == 0) stripes = 1;
  stripes = std::min(stripes, std::max<std::size_t>(rows, 1));
  if (stripes <= 1) {
    body(std::size_t{0}, rows);
    return;
  }
  const ExecContext* exec_context = CurrentExecContext();
  const std::size_t chunk = (rows + stripes - 1) / stripes;
  std::vector<std::thread> workers;
  workers.reserve(stripes - 1);
  std::vector<std::exception_ptr> errors(stripes);
  for (std::size_t b = 1; b < stripes; ++b) {
    const std::size_t begin = b * chunk;
    const std::size_t end = std::min(rows, begin + chunk);
    if (begin >= end) break;
    workers.emplace_back([&body, &errors, exec_context, b, begin, end] {
      ScopedExecContext scoped(exec_context);
      try {
        body(begin, end);
      } catch (...) {
        errors[b] = std::current_exception();
      }
    });
  }
  try {
    body(std::size_t{0}, std::min(rows, chunk));
  } catch (...) {
    errors[0] = std::current_exception();
  }
  for (std::thread& worker : workers) worker.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace

PairCodeStore::PairCodeStore(const ColumnarLog* columns)
    : columns_(columns) {
  PX_CHECK(columns != nullptr);
}

std::size_t PairCodeStore::BytesNeeded(std::size_t rows,
                                       std::size_t features) {
  const std::size_t words =
      (features + kernel::kPackedFeaturesPerWord - 1) /
      kernel::kPackedFeaturesPerWord;
  return rows * rows * words * sizeof(std::uint64_t);
}

std::size_t PairCodeStore::bytes_per_plane() const {
  return BytesNeeded(columns_->rows(), columns_->schema().size());
}

std::size_t PairCodeStore::ResidentBytesFor(std::size_t max_bytes) const {
  const std::size_t plane = bytes_per_plane();
  if (plane <= max_bytes) return plane;
  // plane > max_bytes >= 0 implies rows > 0 and a non-zero tile.
  const std::size_t tile =
      TilePool::TileBytes(columns_->rows(), columns_->schema().size());
  const std::size_t frames =
      std::min(columns_->rows(), max_bytes / tile);
  return frames * tile;
}

TilePool* PairCodeStore::AcquireTilePool(double sim_fraction,
                                         std::size_t max_bytes) const {
  if (bytes_per_plane() <= max_bytes) return nullptr;  // resident plane path
  const std::size_t tile =
      TilePool::TileBytes(columns_->rows(), columns_->schema().size());
  const std::size_t frames = std::min(columns_->rows(), max_bytes / tile);
  if (frames == 0) return nullptr;  // streaming path
  MutexLock lock(mutex_);
  for (const PoolEntry& entry : pools_) {
    if (entry.sim_fraction == sim_fraction && entry.frames == frames) {
      return entry.pool.get();
    }
  }
  PoolEntry entry;
  entry.sim_fraction = sim_fraction;
  entry.frames = frames;
  entry.pool = std::make_unique<TilePool>(columns_, sim_fraction, frames);
  pools_.push_back(std::move(entry));
  return pools_.back().pool.get();
}

PairCodeStore::Plane* PairCodeStore::FindPlane(double sim_fraction) const {
  MutexLock lock(mutex_);
  for (const auto& plane : planes_) {
    if (plane->sim_fraction == sim_fraction) return plane.get();
  }
  planes_.push_back(std::make_unique<Plane>());
  planes_.back()->sim_fraction = sim_fraction;
  return planes_.back().get();
}

void PairCodeStore::Build(Plane* plane, int threads) const {
  const std::size_t n = columns_->rows();
  const std::size_t k = columns_->schema().size();
  const std::size_t words = (k + kernel::kPackedFeaturesPerWord - 1) /
                            kernel::kPackedFeaturesPerWord;
  Resident& resident = plane->resident;
  resident.rows_ = n;
  resident.features_ = k;
  resident.words_ = words;
  resident.sim_fraction_ = plane->sim_fraction;
  resident.data_.assign(n * n * words, 0);

  const kernel::RawColumnTable table(*columns_);
  const double sim = plane->sim_fraction;
  std::uint64_t* data = resident.data_.data();
  // Tile i (row i's n pair vectors) is filled by exactly one stripe; the
  // diagonal is packed too so addressing stays branch-free.
  try {
    ForEachRowStripeLocal(n, threads, [&](std::size_t begin,
                                          std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        ThrowIfInterrupted();
        std::uint64_t* tile = data + i * n * words;
        for (std::size_t j = 0; j < n; ++j) {
          kernel::PackIsSameCodesRaw(table, i, j, sim, tile + j * words);
        }
      }
    });
  } catch (...) {
    // A cancelled build must leave the plane exactly as if never
    // attempted: drop the partial data (plane->built stays false, the
    // once_flag is unconsumed because call_once propagates the exception),
    // so the next Acquire rebuilds from scratch.
    resident = Resident{};
    throw;
  }

  builds_.fetch_add(1, std::memory_order_acq_rel);
  plane->built.store(true, std::memory_order_release);
}

void PairCodeStore::BuildSeeded(Plane* plane, const Resident& base,
                                int threads) const {
  const std::size_t n = columns_->rows();
  const std::size_t k = columns_->schema().size();
  const std::size_t words = (k + kernel::kPackedFeaturesPerWord - 1) /
                            kernel::kPackedFeaturesPerWord;
  const std::size_t base_rows = base.rows();
  PX_CHECK_LE(base_rows, n) << "seed plane has more rows than the log";
  PX_CHECK_EQ(base.features(), k) << "seed plane schema mismatch";
  PX_CHECK_EQ(base.sim_fraction(), plane->sim_fraction)
      << "seed plane similarity fraction mismatch";

  Resident& resident = plane->resident;
  resident.rows_ = n;
  resident.features_ = k;
  resident.words_ = words;
  resident.sim_fraction_ = plane->sim_fraction;
  resident.data_.assign(n * n * words, 0);

  const kernel::RawColumnTable table(*columns_);
  const double sim = plane->sim_fraction;
  std::uint64_t* data = resident.data_.data();
  try {
    ForEachRowStripeLocal(n, threads, [&](std::size_t begin,
                                          std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        ThrowIfInterrupted();
        std::uint64_t* tile = data + i * n * words;
        if (i < base_rows) {
          // Old row: its old-pair prefix (i, 0..base_rows-1) is contiguous
          // in the seed tile — copy it, then pack only the new columns.
          std::copy_n(base.pair_words(i, 0), base_rows * words, tile);
          for (std::size_t j = base_rows; j < n; ++j) {
            kernel::PackIsSameCodesRaw(table, i, j, sim, tile + j * words);
          }
        } else {
          for (std::size_t j = 0; j < n; ++j) {
            kernel::PackIsSameCodesRaw(table, i, j, sim, tile + j * words);
          }
        }
      }
    });
  } catch (...) {
    // Same rollback contract as Build: a cancelled seeded build leaves the
    // plane as if never attempted.
    resident = Resident{};
    throw;
  }

  builds_.fetch_add(1, std::memory_order_acq_rel);
  plane->built.store(true, std::memory_order_release);
}

const PairCodeStore::Resident* PairCodeStore::AcquireSeeded(
    double sim_fraction, const Resident& base, std::size_t max_bytes,
    int build_threads) const {
  if (bytes_per_plane() > max_bytes) return nullptr;
  Plane* plane = FindPlane(sim_fraction);
  std::call_once(plane->once, [this, plane, &base, build_threads] {
    BuildSeeded(plane, base, build_threads);
  });
  return &plane->resident;
}

const PairCodeStore::Resident* PairCodeStore::Acquire(
    double sim_fraction, std::size_t max_bytes, int build_threads) const {
  if (bytes_per_plane() > max_bytes) return nullptr;
  Plane* plane = FindPlane(sim_fraction);
  std::call_once(plane->once, [this, plane, build_threads] {
    Build(plane, build_threads);
  });
  return &plane->resident;
}

const PairCodeStore::Resident* PairCodeStore::Peek(
    double sim_fraction) const {
  MutexLock lock(mutex_);
  for (const auto& plane : planes_) {
    if (plane->sim_fraction == sim_fraction &&
        plane->built.load(std::memory_order_acquire)) {
      return &plane->resident;
    }
  }
  return nullptr;
}

std::size_t PairCodeStore::resident_bytes() const {
  MutexLock lock(mutex_);
  std::size_t total = 0;
  for (const auto& plane : planes_) {
    if (plane->built.load(std::memory_order_acquire)) {
      total += plane->resident.bytes();
    }
  }
  for (const PoolEntry& entry : pools_) total += entry.pool->bytes();
  return total;
}

std::uint64_t PairCodeStore::tile_hits() const {
  MutexLock lock(mutex_);
  std::uint64_t total = 0;
  for (const PoolEntry& entry : pools_) total += entry.pool->hits();
  return total;
}

std::uint64_t PairCodeStore::tile_misses() const {
  MutexLock lock(mutex_);
  std::uint64_t total = 0;
  for (const PoolEntry& entry : pools_) total += entry.pool->misses();
  return total;
}

std::uint64_t PairCodeStore::tile_evictions() const {
  MutexLock lock(mutex_);
  std::uint64_t total = 0;
  for (const PoolEntry& entry : pools_) total += entry.pool->evictions();
  return total;
}

}  // namespace perfxplain
