#ifndef PERFXPLAIN_FEATURES_PAIR_CODE_STORE_H_
#define PERFXPLAIN_FEATURES_PAIR_CODE_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/thread_annotations.h"
#include "features/pair_feature_kernel.h"
#include "features/tile_pool.h"
#include "log/columnar.h"

namespace perfxplain {

/// A snapshot-resident cache of every ordered pair's packed 2-bit isSame
/// codes, so sequential SimButDiff queries skip the per-pair packing the
/// batch path amortizes and run pure XOR + mask + popcount over resident
/// words. One store belongs to one immutable ColumnarLog (the LogSnapshot
/// owns it next to the columns); it is built lazily behind std::call_once
/// on first acquisition and shared read-only by every PreparedQuery and
/// worker thread afterwards.
///
/// Layout (one "plane" per similarity fraction): the n² pair vectors are
/// row-tiled — tile i holds the n packed vectors of row i's ordered pairs
/// (i, 0..n-1), each vector ceil(k/32) contiguous uint64 words — so the
/// row-major pair scans the engine runs touch the store strictly
/// sequentially and a row's tile stays cache-resident across its inner
/// loop. The pair (i, j) lives at word offset (i*n + j) * word_count().
///
/// Memory: a plane costs n² * ceil(k/32) * 8 bytes ≈ n² * k/4 bytes (2
/// bits per feature per ordered pair; the diagonal is stored too, keeping
/// addressing branch-free). Acquire refuses to build — and refuses to
/// return an already-built plane — when that exceeds the caller's budget.
/// Budgets between one row tile and a whole plane are no longer a cliff:
/// AcquireTilePool hands out a buffer pool of pinnable row-tile frames
/// (TilePool) so the hottest rows stay resident at any fractional budget,
/// and only a budget under one tile leaves callers on the streaming
/// fallback (SimButDiffOptions::pair_code_budget_bytes; 0 keeps streaming
/// as the degenerate case).
///
/// isSame codes depend on the similarity fraction (numeric features), so
/// planes are keyed by the exact double; engines sharing a snapshot under
/// different fractions each get their own plane. In practice every engine
/// over one snapshot runs the same fraction and the registry holds one.
///
/// Thread safety: Acquire/Peek are const and safe from any number of
/// threads; the first concurrent acquirers of a plane rendezvous on its
/// std::call_once and all observe the fully built data. The plane
/// registry is the store's one mutex-guarded member and is annotated for
/// Clang Thread Safety Analysis (common/thread_annotations.h): touching
/// `planes_` without `mutex_` is a compile error under
/// -Wthread-safety.
class PairCodeStore {
 public:
  /// The built, immutable packed-code plane of one similarity fraction.
  class Resident {
   public:
    std::size_t rows() const { return rows_; }
    std::size_t features() const { return features_; }
    /// Words per pair vector: ceil(features / kPackedFeaturesPerWord).
    std::size_t word_count() const { return words_; }
    double sim_fraction() const { return sim_fraction_; }
    std::size_t bytes() const { return data_.size() * sizeof(std::uint64_t); }

    /// The packed isSame codes of ordered pair (i, j): word_count() words,
    /// field-for-field equal to kernel::PackIsSameCodes(table, i, j,
    /// sim_fraction()).
    const std::uint64_t* pair_words(std::size_t i, std::size_t j) const {
      return data_.data() + (i * rows_ + j) * words_;
    }

   private:
    friend class PairCodeStore;
    std::size_t rows_ = 0;
    std::size_t features_ = 0;
    std::size_t words_ = 0;
    double sim_fraction_ = 0.0;
    std::vector<std::uint64_t> data_;
  };

  /// `columns` must outlive the store (the LogSnapshot owns both).
  explicit PairCodeStore(const ColumnarLog* columns);

  PairCodeStore(const PairCodeStore&) = delete;
  PairCodeStore& operator=(const PairCodeStore&) = delete;

  /// Bytes one plane of a (rows, features) log occupies once built — the
  /// budget formula callers compare against their cap.
  static std::size_t BytesNeeded(std::size_t rows, std::size_t features);

  /// Bytes a plane of this store's log occupies.
  std::size_t bytes_per_plane() const;

  /// Bytes the store would actually hold resident under `max_bytes`: the
  /// whole plane when it fits, otherwise the tile-pool frames the budget
  /// buys — min(rows, floor(max_bytes / TilePool::TileBytes)) frames of
  /// one row tile each, 0 when the budget buys no frame (pure
  /// streaming). This per-frame formula replaces the whole-plane one for
  /// admission control: the charge is what a request can cause to be
  /// allocated, never the plane a fractional budget will not build.
  std::size_t ResidentBytesFor(std::size_t max_bytes) const;

  /// Returns the resident plane for `sim_fraction`, building it on first
  /// acquisition (parallel pack over row stripes, call_once-guarded;
  /// `build_threads` workers, 0 = hardware concurrency — striping never
  /// changes the built words). Returns nullptr — the streaming-pack
  /// fallback — when a plane would exceed `max_bytes`, without building
  /// anything. The budget test depends only on (rows, features,
  /// max_bytes), so a given caller either always runs resident or always
  /// streams.
  const Resident* Acquire(double sim_fraction, std::size_t max_bytes,
                          int build_threads = 0) const PX_EXCLUDES(mutex_);

  /// Like Acquire, but seeds the first build from `base` — the built plane
  /// of the same similarity fraction over a row-prefix of this store's log
  /// (the previous snapshot generation; append-only promotion never mutates
  /// old rows). Pair vectors whose rows are both old are copied from `base`
  /// verbatim; only vectors touching a row >= base.rows() are packed. The
  /// result is bitwise identical to a cold Build because PackIsSameCodes is
  /// a pure function of the two rows' immutable columns — the copy just
  /// skips recomputing words whose inputs did not change. Budget and
  /// call_once semantics match Acquire exactly (a plane already built cold
  /// is returned as-is; a cancelled seeded build rolls back whole).
  const Resident* AcquireSeeded(double sim_fraction, const Resident& base,
                                std::size_t max_bytes,
                                int build_threads = 0) const
      PX_EXCLUDES(mutex_);

  /// The tile pool serving `sim_fraction` under `max_bytes` — the
  /// page-granular middle path between a resident plane and streaming.
  /// Created (empty) on first acquisition and shared by every caller with
  /// the same (fraction, frame count); the pool's frames fill and recycle
  /// on demand as queries fetch row tiles. Returns nullptr when the whole
  /// plane fits in `max_bytes` (callers take Acquire's resident plane
  /// instead) or when the budget buys no frame (callers stream) — so
  /// exactly one of the three paths applies to a given budget.
  TilePool* AcquireTilePool(double sim_fraction, std::size_t max_bytes) const
      PX_EXCLUDES(mutex_);

  /// The plane for `sim_fraction` if some earlier Acquire built it,
  /// nullptr otherwise. Never builds.
  const Resident* Peek(double sim_fraction) const PX_EXCLUDES(mutex_);

  /// True when Peek(sim_fraction) would return a plane.
  bool warm(double sim_fraction) const {
    return Peek(sim_fraction) != nullptr;
  }

  /// Number of planes built so far. Callers bracketing a query with this
  /// counter learn whether the query paid a one-time build
  /// (ExplainResponse::pair_store_built; bench::RunOnce reports it so
  /// trajectory numbers are not polluted by build cost).
  std::uint64_t build_count() const {
    return builds_.load(std::memory_order_acquire);
  }

  /// Total bytes of all built planes.
  std::size_t resident_bytes() const PX_EXCLUDES(mutex_);

  /// Tile-pool counters summed over every pool of this store (see
  /// TilePool::hits/misses/evictions). ExplainResponse brackets these so
  /// a request reports the tile traffic it drove.
  std::uint64_t tile_hits() const PX_EXCLUDES(mutex_);
  std::uint64_t tile_misses() const PX_EXCLUDES(mutex_);
  std::uint64_t tile_evictions() const PX_EXCLUDES(mutex_);

 private:
  /// One similarity fraction's plane entry. The registry mutex guards only
  /// the `planes_` vector; a Plane's own fields are published by
  /// std::call_once (`once` consumed exactly once, `built` flipped with
  /// release order after the data is complete), which the thread-safety
  /// analysis cannot model — the TSan CI job and the concurrent
  /// first-touch tests cover that handoff instead.
  struct Plane {
    double sim_fraction = 0.0;
    std::once_flag once;
    std::atomic<bool> built{false};
    Resident resident;
  };

  /// Finds or creates the (unbuilt) plane entry for `sim_fraction`. The
  /// returned Plane outlives the lock (entries are never erased; the
  /// vector holds stable unique_ptrs), so callers may rendezvous on its
  /// once_flag without the registry mutex.
  Plane* FindPlane(double sim_fraction) const PX_EXCLUDES(mutex_);

  void Build(Plane* plane, int threads) const;
  void BuildSeeded(Plane* plane, const Resident& base, int threads) const;

  /// One tile pool per (fraction, frame count) an engine's budget maps
  /// to. Entries are never erased (stable unique_ptrs, like planes_), so
  /// the returned pool outlives the registry lock; the pool is internally
  /// synchronized.
  struct PoolEntry {
    double sim_fraction = 0.0;
    std::size_t frames = 0;
    std::unique_ptr<TilePool> pool;
  };

  const ColumnarLog* columns_;
  mutable Mutex mutex_;  ///< guards the registries `planes_` and `pools_`
  mutable std::vector<std::unique_ptr<Plane>> planes_ PX_GUARDED_BY(mutex_);
  mutable std::vector<PoolEntry> pools_ PX_GUARDED_BY(mutex_);
  mutable std::atomic<std::uint64_t> builds_{0};
};

}  // namespace perfxplain

#endif  // PERFXPLAIN_FEATURES_PAIR_CODE_STORE_H_
