#include "features/pair_features.h"

namespace perfxplain {

namespace {

Value IsSameFeature(const Value& x, const Value& y, double sim_fraction) {
  if (x.is_missing() || y.is_missing()) return Value::Missing();
  if (x.is_numeric() && y.is_numeric()) {
    return pair_values::BooleanValue(Value::WithinFraction(x, y,
                                                           sim_fraction));
  }
  return pair_values::BooleanValue(x == y);
}

Value CompareFeature(const Value& x, const Value& y, double sim_fraction) {
  if (!x.is_numeric() || !y.is_numeric()) return Value::Missing();
  if (Value::WithinFraction(x, y, sim_fraction)) {
    return pair_values::SimValue();
  }
  return x.number() < y.number() ? pair_values::LtValue()
                                 : pair_values::GtValue();
}

Value DiffFeature(const Value& x, const Value& y) {
  if (!x.is_nominal() || !y.is_nominal()) return Value::Missing();
  return Value::Nominal("(" + x.nominal() + "," + y.nominal() + ")");
}

Value BaseFeature(const Value& x, const Value& y) {
  if (x.is_missing() || y.is_missing()) return Value::Missing();
  if (x == y) return x;
  return Value::Missing();
}

}  // namespace

Value ComputePairFeature(const PairSchema& schema, const ExecutionRecord& a,
                         const ExecutionRecord& b, std::size_t pair_index,
                         const PairFeatureOptions& options) {
  const std::size_t raw_i = schema.RawIndexOf(pair_index);
  PX_CHECK_LT(raw_i, a.values.size());
  PX_CHECK_LT(raw_i, b.values.size());
  const Value& x = a.values[raw_i];
  const Value& y = b.values[raw_i];
  switch (schema.KindOf(pair_index)) {
    case PairFeatureKind::kIsSame:
      return IsSameFeature(x, y, options.sim_fraction);
    case PairFeatureKind::kCompare:
      return CompareFeature(x, y, options.sim_fraction);
    case PairFeatureKind::kDiff:
      return DiffFeature(x, y);
    case PairFeatureKind::kBase:
      return BaseFeature(x, y);
  }
  return Value::Missing();
}

std::vector<Value> PairFeatureView::Materialize() const {
  std::vector<Value> out;
  out.reserve(schema_->size());
  for (std::size_t i = 0; i < schema_->size(); ++i) {
    out.push_back(Get(i));
  }
  return out;
}

}  // namespace perfxplain
