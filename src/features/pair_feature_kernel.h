#ifndef PERFXPLAIN_FEATURES_PAIR_FEATURE_KERNEL_H_
#define PERFXPLAIN_FEATURES_PAIR_FEATURE_KERNEL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/value.h"
#include "features/pair_schema.h"
#include "log/columnar.h"

namespace perfxplain {

/// Branchless-ish scalar kernels computing the Table 1 pair features as
/// small integer codes directly from columnar data. Each kernel is
/// bit-for-bit equivalent to the corresponding branch of ComputePairFeature
/// (pair_features.cc) but never materializes a Value and never allocates.
/// Everything in this namespace is a pure function of its arguments (or an
/// immutable table of column pointers), so kernels are safe to call from
/// any number of row-stripe workers concurrently; thread-count invariance
/// of the scans built on them follows from merging per-stripe integer
/// tallies in stripe order.
///
/// Code conventions:
///  - kMissingCode (-1) encodes a missing pair-feature value;
///  - isSame codes: 0 = "F", 1 = "T";
///  - compare codes: 0 = "LT", 1 = "SIM", 2 = "GT";
///  - diff values are packed (left, right) interner-code pairs;
///  - base features keep the raw column representation (double or interner
///    code).
namespace kernel {

inline constexpr std::int8_t kMissingCode = -1;
inline constexpr std::int8_t kFalseCode = 0;
inline constexpr std::int8_t kTrueCode = 1;
inline constexpr std::int8_t kLtCode = 0;
inline constexpr std::int8_t kSimCode = 1;
inline constexpr std::int8_t kGtCode = 2;
inline constexpr std::int64_t kMissingDiff = -1;

/// Mirror of Value::WithinFraction on raw doubles (footnote 1 similarity).
inline bool WithinFraction(double x, double y, double fraction) {
  if (x == y) return true;
  const double scale = std::max(std::abs(x), std::abs(y));
  return std::abs(x - y) <= fraction * scale;
}

/// f_isSame for a numeric raw feature: T iff within the similarity
/// tolerance; missing when either input is missing.
inline std::int8_t IsSameNumeric(bool x_present, double x, bool y_present,
                                 double y, double sim_fraction) {
  if (!x_present || !y_present) return kMissingCode;
  return WithinFraction(x, y, sim_fraction) ? kTrueCode : kFalseCode;
}

/// f_isSame for a nominal raw feature: exact (dictionary-code) equality.
inline std::int8_t IsSameNominal(std::int32_t x_code, std::int32_t y_code) {
  if (x_code < 0 || y_code < 0) return kMissingCode;
  return x_code == y_code ? kTrueCode : kFalseCode;
}

/// f_compare (numeric raw features only): LT/SIM/GT of x against y.
inline std::int8_t CompareNumeric(bool x_present, double x, bool y_present,
                                  double y, double sim_fraction) {
  if (!x_present || !y_present) return kMissingCode;
  if (WithinFraction(x, y, sim_fraction)) return kSimCode;
  return x < y ? kLtCode : kGtCode;
}

/// f_diff (nominal raw features only) as a packed (left, right) code pair.
/// Equal packed values <=> equal "(left,right)" diff strings.
inline std::int64_t DiffPacked(std::int32_t x_code, std::int32_t y_code) {
  if (x_code < 0 || y_code < 0) return kMissingDiff;
  return (static_cast<std::int64_t>(x_code) << 32) |
         static_cast<std::uint32_t>(y_code);
}

inline std::int32_t DiffLeft(std::int64_t packed) {
  return static_cast<std::int32_t>(packed >> 32);
}
inline std::int32_t DiffRight(std::int64_t packed) {
  return static_cast<std::int32_t>(packed & 0xffffffff);
}

/// Base feature of a numeric raw feature: present (with value x) only when
/// both sides are present and exactly equal. NaN never equals itself, so a
/// NaN input yields a missing base feature, as in the Value path.
struct BaseNumericResult {
  bool present;
  double value;
};
inline BaseNumericResult BaseNumeric(bool x_present, double x, bool y_present,
                                     double y) {
  return {x_present && y_present && x == y, x};
}

/// Base feature of a nominal raw feature: the shared code, or kNoCode.
inline std::int32_t BaseNominal(std::int32_t x_code, std::int32_t y_code) {
  return (x_code >= 0 && x_code == y_code) ? x_code : StringInterner::kNoCode;
}

/// isSame kernel code of raw feature `col` for the ordered row pair
/// (i, j), dispatching on the column type. The allocation-free agreement
/// test shared by the columnar SimButDiff and RuleOfThumb baselines; code
/// equality is exactly Value equality of the corresponding isSame pair
/// features (missing compares equal only to missing).
inline std::int8_t IsSameCode(const ColumnarLog& columns, std::size_t col,
                              std::size_t i, std::size_t j,
                              double sim_fraction) {
  if (columns.is_numeric(col)) {
    const NumericColumn& c = columns.numeric_column(col);
    return IsSameNumeric(c.present.Test(i), c.values[i], c.present.Test(j),
                         c.values[j], sim_fraction);
  }
  const NominalColumn& c = columns.nominal_column(col);
  return IsSameNominal(c.codes[i], c.codes[j]);
}

/// Per-raw-feature column accessors resolved once per log, so O(n²k)
/// inner loops (SimButDiff similarity, RReliefF distances) skip the
/// per-call schema dispatch and checked column lookups of ColumnarLog.
class RawColumnTable {
 public:
  explicit RawColumnTable(const ColumnarLog& columns) {
    const std::size_t k = columns.schema().size();
    entries_.reserve(k);
    for (std::size_t col = 0; col < k; ++col) {
      Entry entry;
      entry.numeric = columns.is_numeric(col);
      if (entry.numeric) {
        entry.num = &columns.numeric_column(col);
      } else {
        entry.nom = &columns.nominal_column(col);
      }
      entries_.push_back(entry);
    }
  }

  /// Number of raw-feature columns in the table.
  std::size_t size() const { return entries_.size(); }

  bool is_numeric(std::size_t col) const { return entries_[col].numeric; }
  const NumericColumn& numeric(std::size_t col) const {
    return *entries_[col].num;
  }
  const NominalColumn& nominal(std::size_t col) const {
    return *entries_[col].nom;
  }

  /// Unchecked equivalent of IsSameCode above.
  std::int8_t IsSame(std::size_t col, std::size_t i, std::size_t j,
                     double sim_fraction) const {
    const Entry& entry = entries_[col];
    if (entry.numeric) {
      const NumericColumn& c = *entry.num;
      return IsSameNumeric(c.present.Test(i), c.values[i], c.present.Test(j),
                           c.values[j], sim_fraction);
    }
    const NominalColumn& c = *entry.nom;
    return IsSameNominal(c.codes[i], c.codes[j]);
  }

 private:
  struct Entry {
    bool numeric = false;
    const NumericColumn* num = nullptr;
    const NominalColumn* nom = nullptr;
  };
  std::vector<Entry> entries_;
};

// ---------------------------------------------------------------------------
// Packed pair codes: the k isSame codes of one ordered pair stored 2 bits
// per feature in uint64_t words, so whole-pair agreement tests reduce to a
// handful of word operations (XOR + mask + popcount) instead of k compares
// and branches. SimButDiff's similarity scan (Algorithm 2 lines 4-11) runs
// on these.
//
// Field layout: feature f occupies bits [2*(f mod 32), 2*(f mod 32)+1] of
// word f/32, holding the isSame code masked to two bits:
//   kFalseCode   (0) -> 0b00
//   kTrueCode    (1) -> 0b01
//   kMissingCode (-1) -> 0b11
// The mapping is injective, so 2-bit field equality is exactly isSame code
// equality (and therefore exactly Value equality of the isSame pair
// features — missing compares equal only to missing). Fields past the last
// feature of the final word are zero in every packed vector produced here,
// so they never register as disagreements.
// ---------------------------------------------------------------------------

/// Portable 64-bit popcount / count-trailing-zeros (C++17 predates
/// std::popcount / std::countr_zero).
inline int PopCount(std::uint64_t x) {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_popcountll(x);
#else
  int count = 0;
  for (; x != 0; x &= x - 1) ++count;
  return count;
#endif
}

/// Trailing zero count of a nonzero word.
inline int CountTrailingZeros(std::uint64_t x) {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_ctzll(x);
#else
  int count = 0;
  while ((x & 1) == 0) {
    x >>= 1;
    ++count;
  }
  return count;
#endif
}

/// Features per packed word (64 bits / 2 bits per feature).
inline constexpr std::size_t kPackedFeaturesPerWord = 32;

/// Mask with the low bit of every 2-bit field set; the disagreement masks
/// below have set bits only at these positions.
inline constexpr std::uint64_t kPackedFieldLsbMask = 0x5555555555555555ull;

/// 2-bit field of one isSame code.
inline std::uint64_t PackedField(std::int8_t code) {
  return static_cast<std::uint64_t>(static_cast<std::uint8_t>(code)) & 0x3u;
}

/// The k isSame codes of one ordered pair, packed 2 bits per feature.
class PackedIsSameCodes {
 public:
  PackedIsSameCodes() = default;
  explicit PackedIsSameCodes(std::size_t features)
      : features_(features),
        words_((features + kPackedFeaturesPerWord - 1) / kPackedFeaturesPerWord,
               0) {}

  std::size_t features() const { return features_; }
  std::size_t word_count() const { return words_.size(); }
  std::uint64_t word(std::size_t w) const { return words_[w]; }
  const std::uint64_t* words() const { return words_.data(); }

  /// Overwrites the field of feature `f` (packing helpers and tests).
  void SetCode(std::size_t f, std::int8_t code) {
    const std::size_t shift = 2 * (f % kPackedFeaturesPerWord);
    std::uint64_t& w = words_[f / kPackedFeaturesPerWord];
    w = (w & ~(std::uint64_t{0x3} << shift)) | (PackedField(code) << shift);
  }

  /// Decodes the field of feature `f` back to the isSame code.
  std::int8_t CodeAt(std::size_t f) const {
    const std::uint64_t field =
        (words_[f / kPackedFeaturesPerWord] >>
         (2 * (f % kPackedFeaturesPerWord))) &
        0x3u;
    return field == 0x3u ? kMissingCode : static_cast<std::int8_t>(field);
  }

 private:
  std::size_t features_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Packs every isSame code of the ordered row pair (i, j). Identical codes
/// to calling table.IsSame(f, i, j, sim_fraction) for each f.
PackedIsSameCodes PackIsSameCodes(const RawColumnTable& table, std::size_t i,
                                  std::size_t j, double sim_fraction);

/// Re-packs the codes of pair (i, j) into `packed`, reusing its storage —
/// the allocation-free form of PackIsSameCodes for scans that pack one
/// pair per iteration (Engine::ExplainBatch). `packed` must already span
/// table.size() features; every field is overwritten, padding stays zero.
void PackIsSameCodesInto(const RawColumnTable& table, std::size_t i,
                         std::size_t j, double sim_fraction,
                         PackedIsSameCodes* packed);

/// Packs the codes of pair (i, j) directly into a caller-owned word span —
/// the storage-free primitive behind PackIsSameCodes/PackIsSameCodesInto
/// and the PairCodeStore bulk build. `words` must hold
/// ceil(table.size() / kPackedFeaturesPerWord) words; every word is
/// overwritten and padding fields past the last feature are zero.
void PackIsSameCodesRaw(const RawColumnTable& table, std::size_t i,
                        std::size_t j, double sim_fraction,
                        std::uint64_t* words);

/// Word-level disagreement mask of two packed words: bit 2*(f mod 32) is
/// set iff the 2-bit fields of feature f differ (XOR, fold the high bit of
/// each field onto the low bit, mask). popcount of the mask = number of
/// disagreeing features in the word.
inline std::uint64_t PackedDisagreeMask(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t x = a ^ b;
  return (x | (x >> 1)) & kPackedFieldLsbMask;
}

/// Number of features on which two packed vectors disagree (they must pack
/// the same feature count).
std::size_t CountPackedDisagreements(const PackedIsSameCodes& a,
                                     const PackedIsSameCodes& b);

/// Sentinel of ScanPairAgainstPoi: the pair was rejected early.
inline constexpr std::size_t kPackedRejected = static_cast<std::size_t>(-1);

/// Features per early-exit chunk of ScanPairAgainstPoi: the fused scan
/// checks the running disagreement count every 8 packed features (16
/// bits), so a hopeless pair wastes at most 7 isSame evaluations versus a
/// feature-at-a-time scan while still comparing through word operations.
inline constexpr std::size_t kPackedChunkFeatures = 8;

/// Fused pack-and-compare of pair (i, j) against the prepacked codes of the
/// pair of interest: packs the pair's isSame codes a chunk (8 features) at
/// a time, XOR + mask + popcounts each chunk against the matching slice of
/// `poi`, and abandons the pair as soon as the running disagreement count
/// exceeds `max_disagree`. Chunk granularity never accepts or rejects
/// differently from a feature-at-a-time scan — only the wasted work
/// changes.
///
/// Returns the total number of disagreeing features (<= max_disagree), or
/// kPackedRejected on early exit. On success, diff_masks[w] holds the
/// per-word disagreement mask (see PackedDisagreeMask); on rejection the
/// contents of diff_masks are unspecified. diff_masks must have room for
/// poi.word_count() words.
inline std::size_t ScanPairAgainstPoi(const RawColumnTable& table,
                                      std::size_t i, std::size_t j,
                                      double sim_fraction,
                                      const PackedIsSameCodes& poi,
                                      std::size_t max_disagree,
                                      std::uint64_t* diff_masks) {
  const std::size_t k = poi.features();
  std::size_t disagree = 0;
  std::size_t f = 0;
  for (std::size_t w = 0; w < poi.word_count(); ++w) {
    const std::uint64_t poi_word = poi.word(w);
    const std::size_t word_end = std::min(k, (w + 1) * kPackedFeaturesPerWord);
    std::uint64_t mask_word = 0;
    std::size_t shift = 2 * (f % kPackedFeaturesPerWord);
    while (f < word_end) {
      const std::size_t chunk_end =
          std::min(word_end, f + kPackedChunkFeatures);
      std::uint64_t chunk = 0;
      const std::size_t chunk_shift = shift;
      for (; f < chunk_end; ++f, shift += 2) {
        chunk |= PackedField(table.IsSame(f, i, j, sim_fraction)) << shift;
      }
      // Slice the poi word down to this chunk's fields; fields the chunk
      // does not cover must not register.
      const std::uint64_t chunk_mask =
          ((std::uint64_t{1} << (shift - chunk_shift)) - 1) << chunk_shift;
      const std::uint64_t mask =
          PackedDisagreeMask(chunk, poi_word & chunk_mask);
      mask_word |= mask;
      disagree += static_cast<std::size_t>(PopCount(mask));
      if (disagree > max_disagree) return kPackedRejected;
    }
    diff_masks[w] = mask_word;
  }
  return disagree;
}

/// Word-level agreement test of an already-packed pair against the
/// prepacked codes of the pair of interest: XOR + mask + popcount per
/// word, abandoning the pair once the running disagreement count exceeds
/// `max_disagree`. This is the whole per-pair inner loop of the
/// PairCodeStore resident path (`pair_words` points into the store) and of
/// the batch scan (it points at a freshly repacked scratch vector). Word
/// granularity accepts/rejects exactly as the per-call 8-feature-chunk
/// scan does — only the wasted work differs.
///
/// Returns the total number of disagreeing features (<= max_disagree), or
/// kPackedRejected on early exit. On success diff_masks[w] holds the
/// per-word disagreement mask; on rejection its contents are unspecified.
inline std::size_t ComparePackedAgainstPoi(const std::uint64_t* pair_words,
                                           const PackedIsSameCodes& poi,
                                           std::size_t max_disagree,
                                           std::uint64_t* diff_masks) {
  std::size_t disagree = 0;
  for (std::size_t w = 0; w < poi.word_count(); ++w) {
    const std::uint64_t mask = PackedDisagreeMask(pair_words[w], poi.word(w));
    diff_masks[w] = mask;
    disagree += static_cast<std::size_t>(PopCount(mask));
    if (disagree > max_disagree) return kPackedRejected;
  }
  return disagree;
}

/// Appends the feature indexes encoded in `diff_masks` (as produced by
/// ScanPairAgainstPoi) to `out`, in ascending order: LSB-first within each
/// word, words ascending — the same order a feature-at-a-time scan pushes
/// them.
void AppendMaskedFeatures(const std::uint64_t* diff_masks,
                          std::size_t word_count,
                          std::vector<std::size_t>& out);

}  // namespace kernel

/// Decodes kernel output codes back into the canonical Values, for Atom
/// constants and tests. `interner` is the columnar log's dictionary.
Value DecodeIsSame(std::int8_t code);
Value DecodeCompare(std::int8_t code);
Value DecodeDiff(std::int64_t packed, const StringInterner& interner);
Value DecodeBaseNominal(std::int32_t code, const StringInterner& interner);

/// Computes pair feature `pair_index` for rows (i, j) of `columns` and
/// decodes it to a Value — the kernel-backed equivalent of
/// ComputePairFeature, used by equivalence tests.
Value ComputePairFeatureColumnar(const ColumnarLog& columns,
                                 const PairSchema& schema, std::size_t i,
                                 std::size_t j, std::size_t pair_index,
                                 double sim_fraction);

}  // namespace perfxplain

#endif  // PERFXPLAIN_FEATURES_PAIR_FEATURE_KERNEL_H_
