#ifndef PERFXPLAIN_FEATURES_PAIR_FEATURE_KERNEL_H_
#define PERFXPLAIN_FEATURES_PAIR_FEATURE_KERNEL_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/value.h"
#include "features/pair_schema.h"
#include "log/columnar.h"

namespace perfxplain {

/// Branchless-ish scalar kernels computing the Table 1 pair features as
/// small integer codes directly from columnar data. Each kernel is
/// bit-for-bit equivalent to the corresponding branch of ComputePairFeature
/// (pair_features.cc) but never materializes a Value and never allocates.
///
/// Code conventions:
///  - kMissingCode (-1) encodes a missing pair-feature value;
///  - isSame codes: 0 = "F", 1 = "T";
///  - compare codes: 0 = "LT", 1 = "SIM", 2 = "GT";
///  - diff values are packed (left, right) interner-code pairs;
///  - base features keep the raw column representation (double or interner
///    code).
namespace kernel {

inline constexpr std::int8_t kMissingCode = -1;
inline constexpr std::int8_t kFalseCode = 0;
inline constexpr std::int8_t kTrueCode = 1;
inline constexpr std::int8_t kLtCode = 0;
inline constexpr std::int8_t kSimCode = 1;
inline constexpr std::int8_t kGtCode = 2;
inline constexpr std::int64_t kMissingDiff = -1;

/// Mirror of Value::WithinFraction on raw doubles (footnote 1 similarity).
inline bool WithinFraction(double x, double y, double fraction) {
  if (x == y) return true;
  const double scale = std::max(std::abs(x), std::abs(y));
  return std::abs(x - y) <= fraction * scale;
}

/// f_isSame for a numeric raw feature: T iff within the similarity
/// tolerance; missing when either input is missing.
inline std::int8_t IsSameNumeric(bool x_present, double x, bool y_present,
                                 double y, double sim_fraction) {
  if (!x_present || !y_present) return kMissingCode;
  return WithinFraction(x, y, sim_fraction) ? kTrueCode : kFalseCode;
}

/// f_isSame for a nominal raw feature: exact (dictionary-code) equality.
inline std::int8_t IsSameNominal(std::int32_t x_code, std::int32_t y_code) {
  if (x_code < 0 || y_code < 0) return kMissingCode;
  return x_code == y_code ? kTrueCode : kFalseCode;
}

/// f_compare (numeric raw features only): LT/SIM/GT of x against y.
inline std::int8_t CompareNumeric(bool x_present, double x, bool y_present,
                                  double y, double sim_fraction) {
  if (!x_present || !y_present) return kMissingCode;
  if (WithinFraction(x, y, sim_fraction)) return kSimCode;
  return x < y ? kLtCode : kGtCode;
}

/// f_diff (nominal raw features only) as a packed (left, right) code pair.
/// Equal packed values <=> equal "(left,right)" diff strings.
inline std::int64_t DiffPacked(std::int32_t x_code, std::int32_t y_code) {
  if (x_code < 0 || y_code < 0) return kMissingDiff;
  return (static_cast<std::int64_t>(x_code) << 32) |
         static_cast<std::uint32_t>(y_code);
}

inline std::int32_t DiffLeft(std::int64_t packed) {
  return static_cast<std::int32_t>(packed >> 32);
}
inline std::int32_t DiffRight(std::int64_t packed) {
  return static_cast<std::int32_t>(packed & 0xffffffff);
}

/// Base feature of a numeric raw feature: present (with value x) only when
/// both sides are present and exactly equal. NaN never equals itself, so a
/// NaN input yields a missing base feature, as in the Value path.
struct BaseNumericResult {
  bool present;
  double value;
};
inline BaseNumericResult BaseNumeric(bool x_present, double x, bool y_present,
                                     double y) {
  return {x_present && y_present && x == y, x};
}

/// Base feature of a nominal raw feature: the shared code, or kNoCode.
inline std::int32_t BaseNominal(std::int32_t x_code, std::int32_t y_code) {
  return (x_code >= 0 && x_code == y_code) ? x_code : StringInterner::kNoCode;
}

/// isSame kernel code of raw feature `col` for the ordered row pair
/// (i, j), dispatching on the column type. The allocation-free agreement
/// test shared by the columnar SimButDiff and RuleOfThumb baselines; code
/// equality is exactly Value equality of the corresponding isSame pair
/// features (missing compares equal only to missing).
inline std::int8_t IsSameCode(const ColumnarLog& columns, std::size_t col,
                              std::size_t i, std::size_t j,
                              double sim_fraction) {
  if (columns.is_numeric(col)) {
    const NumericColumn& c = columns.numeric_column(col);
    return IsSameNumeric(c.present.Test(i), c.values[i], c.present.Test(j),
                         c.values[j], sim_fraction);
  }
  const NominalColumn& c = columns.nominal_column(col);
  return IsSameNominal(c.codes[i], c.codes[j]);
}

/// Per-raw-feature column accessors resolved once per log, so O(n²k)
/// inner loops (SimButDiff similarity, RReliefF distances) skip the
/// per-call schema dispatch and checked column lookups of ColumnarLog.
class RawColumnTable {
 public:
  explicit RawColumnTable(const ColumnarLog& columns) {
    const std::size_t k = columns.schema().size();
    entries_.reserve(k);
    for (std::size_t col = 0; col < k; ++col) {
      Entry entry;
      entry.numeric = columns.is_numeric(col);
      if (entry.numeric) {
        entry.num = &columns.numeric_column(col);
      } else {
        entry.nom = &columns.nominal_column(col);
      }
      entries_.push_back(entry);
    }
  }

  bool is_numeric(std::size_t col) const { return entries_[col].numeric; }
  const NumericColumn& numeric(std::size_t col) const {
    return *entries_[col].num;
  }
  const NominalColumn& nominal(std::size_t col) const {
    return *entries_[col].nom;
  }

  /// Unchecked equivalent of IsSameCode above.
  std::int8_t IsSame(std::size_t col, std::size_t i, std::size_t j,
                     double sim_fraction) const {
    const Entry& entry = entries_[col];
    if (entry.numeric) {
      const NumericColumn& c = *entry.num;
      return IsSameNumeric(c.present.Test(i), c.values[i], c.present.Test(j),
                           c.values[j], sim_fraction);
    }
    const NominalColumn& c = *entry.nom;
    return IsSameNominal(c.codes[i], c.codes[j]);
  }

 private:
  struct Entry {
    bool numeric = false;
    const NumericColumn* num = nullptr;
    const NominalColumn* nom = nullptr;
  };
  std::vector<Entry> entries_;
};

}  // namespace kernel

/// Decodes kernel output codes back into the canonical Values, for Atom
/// constants and tests. `interner` is the columnar log's dictionary.
Value DecodeIsSame(std::int8_t code);
Value DecodeCompare(std::int8_t code);
Value DecodeDiff(std::int64_t packed, const StringInterner& interner);
Value DecodeBaseNominal(std::int32_t code, const StringInterner& interner);

/// Computes pair feature `pair_index` for rows (i, j) of `columns` and
/// decodes it to a Value — the kernel-backed equivalent of
/// ComputePairFeature, used by equivalence tests.
Value ComputePairFeatureColumnar(const ColumnarLog& columns,
                                 const PairSchema& schema, std::size_t i,
                                 std::size_t j, std::size_t pair_index,
                                 double sim_fraction);

}  // namespace perfxplain

#endif  // PERFXPLAIN_FEATURES_PAIR_FEATURE_KERNEL_H_
