#ifndef PERFXPLAIN_FEATURES_TILE_POOL_H_
#define PERFXPLAIN_FEATURES_TILE_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <vector>

#include "common/thread_annotations.h"
#include "features/lru_replacer.h"
#include "features/pair_feature_kernel.h"
#include "log/columnar.h"

namespace perfxplain {

/// A buffer pool of pair-code row tiles: the page-granular middle ground
/// between the PairCodeStore's fully resident plane and its streaming
/// fallback. One pool serves one (ColumnarLog, similarity fraction) at a
/// fixed frame count; each frame holds one row's complete tile — the n
/// packed isSame vectors of that row's ordered pairs (i, 0..n-1),
/// word-for-word what Resident::pair_words(i, ·) would hold — so any
/// budget between one tile and the whole plane keeps the hottest rows
/// resident while cold rows stream through the bitwise-identical packing
/// kernels.
///
/// Frame lifecycle (the classic buffer_pool_manager discipline): Fetch on
/// a resident row pins its frame and returns a TileRef; a miss claims a
/// free frame or evicts the LruReplacer's victim (only unpinned frames
/// are evictable), builds the tile into the frame outside the pool lock,
/// and publishes it to concurrent fetchers of the same row, who wait on
/// the pool's condition variable rather than building twice. When every
/// frame is pinned or mid-build, Fetch returns an invalid TileRef and the
/// caller packs that row into private scratch — never blocking on
/// capacity, never changing any result. TileRef unpins on destruction;
/// a pin count reaching zero re-enters the replacer (warm if the tile was
/// ever re-referenced after its build, cold otherwise — see LruReplacer
/// on scan resistance).
///
/// A tile's content is a pure function of the immutable columns, the
/// similarity fraction and the row, so rebuilding an evicted tile
/// reproduces it bit for bit: eviction order, budget and thread count are
/// never observable in explanations — the property the randomized
/// eviction-equivalence suites pin.
///
/// Memory: frame_count() frames of TileBytes(rows, features) = n ·
/// ceil(k/32) · 8 bytes each, allocated once at construction (plus O(n)
/// page-table and O(frames) metadata); per-frame charging replaces the
/// whole-plane formula when a budget is smaller than a plane.
///
/// Thread safety: Fetch and TileRef release are safe from any number of
/// threads. The page table, frame metadata, free list and replacer are
/// guarded by one pool mutex; tile words are written only by the frame's
/// building thread (the frame is pinned and unmapped-for-eviction while
/// kBuilding) and read only after a kReady transition under the mutex —
/// the condition-variable interop sites carry
/// PX_NO_THREAD_SAFETY_ANALYSIS per common/thread_annotations.h, and the
/// TSan CI job covers the build/publish handoff the analysis cannot see.
///
/// A cancelled or deadline-expired build (ThrowIfInterrupted firing
/// mid-pack) rolls the frame back to free and wakes waiters before the
/// exception propagates, so the pool keeps serving and the next fetch of
/// that row rebuilds from scratch.
class TilePool {
 public:
  /// `columns` must outlive the pool (the PairCodeStore registry owns the
  /// pool next to its planes). `frames` must be at least 1.
  TilePool(const ColumnarLog* columns, double sim_fraction,
           std::size_t frames);

  TilePool(const TilePool&) = delete;
  TilePool& operator=(const TilePool&) = delete;

  /// Bytes one row tile of a (rows, features) log occupies — the
  /// per-frame unit of the budget formula (a plane is rows of these).
  static std::size_t TileBytes(std::size_t rows, std::size_t features);

  /// A pinned row tile. While a valid TileRef lives, words() points at
  /// the row's n packed pair vectors (pair (row, j) at words() + j *
  /// word_count()) and the frame cannot be evicted. Unpins on destruction
  /// or Release(); movable, not copyable.
  class TileRef {
   public:
    TileRef() = default;
    TileRef(TileRef&& other) noexcept { *this = std::move(other); }
    TileRef& operator=(TileRef&& other) noexcept {
      if (this != &other) {
        Release();
        pool_ = other.pool_;
        frame_ = other.frame_;
        words_ = other.words_;
        other.pool_ = nullptr;
        other.words_ = nullptr;
      }
      return *this;
    }
    TileRef(const TileRef&) = delete;
    TileRef& operator=(const TileRef&) = delete;
    ~TileRef() { Release(); }

    bool valid() const { return pool_ != nullptr; }
    const std::uint64_t* words() const { return words_; }

    /// Unpins now (idempotent).
    void Release() {
      if (pool_ != nullptr) pool_->Unpin(frame_);
      pool_ = nullptr;
      words_ = nullptr;
    }

   private:
    friend class TilePool;
    TileRef(TilePool* pool, std::size_t frame, const std::uint64_t* words)
        : pool_(pool), frame_(frame), words_(words) {}

    TilePool* pool_ = nullptr;
    std::size_t frame_ = 0;
    const std::uint64_t* words_ = nullptr;
  };

  /// Frame-claiming policy on a miss. kEvict (the default) is the full
  /// buffer-pool discipline: claim a free frame or evict the replacer's
  /// victim. kFreeOnly claims only a free frame and never evicts — the
  /// scan paths use it so that a sweep wider than the pool streams its
  /// cold rows through the cheap fused kernels instead of churning
  /// evict-and-rebuild cycles (a tile build packs every pair of the row
  /// with no early exit, so rebuilding tiles that will be evicted before
  /// reuse costs more than streaming the row ever would).
  enum class Admission { kEvict, kFreeOnly };

  /// Pins row `row`'s tile, building it into a frame claimed under
  /// `admission` on a miss. Invalid TileRef when no frame can be claimed
  /// (every frame pinned or mid-build, or kFreeOnly with no free frame) —
  /// the caller streams that row. May throw InterruptedError from the
  /// build's cancellation checkpoint; the claimed frame is rolled back
  /// first.
  TileRef Fetch(std::size_t row, Admission admission = Admission::kEvict);

  std::size_t rows() const { return rows_; }
  /// Words per pair vector: ceil(features / kPackedFeaturesPerWord).
  std::size_t word_count() const { return words_; }
  std::size_t frame_count() const { return frame_count_; }
  double sim_fraction() const { return sim_fraction_; }
  /// Bytes of the frame arena (frame_count() tiles, resident whether or
  /// not currently mapped).
  std::size_t bytes() const {
    return data_.size() * sizeof(std::uint64_t);
  }

  /// Monotone counters: fetches served by a resident tile, fetches that
  /// built one (misses), and tiles evicted to make room. A fetch that
  /// found no claimable frame counts as a miss with no build.
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  enum class FrameState : std::uint8_t { kFree, kBuilding, kReady };
  struct Frame {
    std::size_t row = 0;
    std::uint32_t pin_count = 0;
    FrameState state = FrameState::kFree;
    /// Re-referenced after its build — decides the replacer insertion end.
    bool hot = false;
  };

  static constexpr std::int32_t kNoFrame = -1;

  std::uint64_t* frame_words(std::size_t frame) {
    return data_.data() + frame * tile_words_;
  }

  /// Packs row `row`'s whole tile into `dst` — exactly the plane build's
  /// per-row loop. Runs outside the pool lock.
  void BuildTile(std::size_t row, std::uint64_t* dst) const;

  void Unpin(std::size_t frame) PX_EXCLUDES(mutex_);

  const kernel::RawColumnTable table_;  ///< view over the caller's columns
  const double sim_fraction_;
  const std::size_t rows_;
  const std::size_t words_;       ///< per pair vector
  const std::size_t tile_words_;  ///< per frame: rows_ * words_
  const std::size_t frame_count_;
  std::vector<std::uint64_t> data_;  ///< frame arena, fixed at construction

  mutable Mutex mutex_;
  std::condition_variable cv_;  ///< waits on mutex_.native(): kBuilding -> *
  std::vector<std::int32_t> page_table_ PX_GUARDED_BY(mutex_);  ///< row->frame
  std::vector<Frame> frames_ PX_GUARDED_BY(mutex_);
  std::vector<std::size_t> free_frames_ PX_GUARDED_BY(mutex_);
  LruReplacer replacer_ PX_GUARDED_BY(mutex_);

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace perfxplain

#endif  // PERFXPLAIN_FEATURES_TILE_POOL_H_
