#include "features/tile_pool.h"

#include <mutex>

#include "common/cancel.h"
#include "common/logging.h"

namespace perfxplain {

TilePool::TilePool(const ColumnarLog* columns, double sim_fraction,
                   std::size_t frames)
    : table_(*columns),
      sim_fraction_(sim_fraction),
      rows_(columns->rows()),
      words_((columns->schema().size() + kernel::kPackedFeaturesPerWord - 1) /
             kernel::kPackedFeaturesPerWord),
      tile_words_(rows_ * words_),
      frame_count_(frames),
      data_(frames * tile_words_, 0),
      page_table_(rows_, kNoFrame),
      frames_(frames),
      replacer_(frames) {
  // `columns` was dereferenced in the init list; the owning PairCodeStore
  // validated it at its own construction.
  PX_CHECK(frames > 0);
  free_frames_.reserve(frames);
  // Popped from the back, so frames are claimed in index order.
  for (std::size_t f = frames; f > 0; --f) free_frames_.push_back(f - 1);
}

std::size_t TilePool::TileBytes(std::size_t rows, std::size_t features) {
  const std::size_t words =
      (features + kernel::kPackedFeaturesPerWord - 1) /
      kernel::kPackedFeaturesPerWord;
  return rows * words * sizeof(std::uint64_t);
}

void TilePool::BuildTile(std::size_t row, std::uint64_t* dst) const {
  // One checkpoint per tile — the same cadence as the plane build's
  // per-row loop, so a deadline or cancellation interrupts a cold sweep
  // promptly.
  ThrowIfInterrupted();
  for (std::size_t j = 0; j < rows_; ++j) {
    kernel::PackIsSameCodesRaw(table_, row, j, sim_fraction_,
                               dst + j * words_);
  }
}

// Fetch waits on cv_ through mutex_.native(), which the thread-safety
// analysis cannot follow (common/thread_annotations.h documents this
// interop pattern); all guarded state is still only touched while the
// unique_lock is held, and the TSan CI job covers the build/publish
// handoff.
TilePool::TileRef TilePool::Fetch(std::size_t row, Admission admission)
    PX_NO_THREAD_SAFETY_ANALYSIS {
  PX_CHECK(row < rows_);
  std::unique_lock<std::mutex> lock(mutex_.native());
  for (;;) {
    const std::int32_t mapped = page_table_[row];
    if (mapped != kNoFrame) {
      const std::size_t f = static_cast<std::size_t>(mapped);
      Frame& frame = frames_[f];
      if (frame.state == FrameState::kReady) {
        if (frame.pin_count++ == 0) replacer_.Pin(f);
        frame.hot = true;
        hits_.fetch_add(1, std::memory_order_relaxed);
        return TileRef(this, f, frame_words(f));
      }
      // Another thread is building this row's tile; wait for its kReady
      // publication (or for the rollback that unmaps the row).
      cv_.wait(lock);
      continue;
    }
    std::size_t frame = 0;
    if (!free_frames_.empty()) {
      frame = free_frames_.back();
      free_frames_.pop_back();
    } else if (admission == Admission::kEvict && replacer_.Victim(&frame)) {
      page_table_[frames_[frame].row] = kNoFrame;
      evictions_.fetch_add(1, std::memory_order_relaxed);
    } else {
      // No admissible frame — every frame pinned or mid-build, or the
      // caller asked not to evict for a first touch: the caller streams
      // this row through the packing kernels instead of blocking on
      // capacity or flushing a resident tile.
      misses_.fetch_add(1, std::memory_order_relaxed);
      return TileRef();
    }
    Frame& claimed = frames_[frame];
    claimed.row = row;
    claimed.pin_count = 1;
    claimed.state = FrameState::kBuilding;
    claimed.hot = false;
    page_table_[row] = static_cast<std::int32_t>(frame);
    misses_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t* dst = frame_words(frame);
    lock.unlock();
    try {
      BuildTile(row, dst);
    } catch (...) {
      // An interrupted build rolls the frame back to free exactly as if
      // never claimed, and wakes fetchers of this row blocked on it; the
      // next fetch rebuilds from scratch.
      lock.lock();
      page_table_[row] = kNoFrame;
      claimed.state = FrameState::kFree;
      claimed.pin_count = 0;
      free_frames_.push_back(frame);
      lock.unlock();
      cv_.notify_all();
      throw;
    }
    lock.lock();
    claimed.state = FrameState::kReady;
    lock.unlock();
    cv_.notify_all();
    return TileRef(this, frame, dst);
  }
}

void TilePool::Unpin(std::size_t frame) {
  MutexLock lock(mutex_);
  Frame& f = frames_[frame];
  PX_CHECK(f.pin_count > 0);
  if (--f.pin_count == 0) replacer_.Unpin(frame, f.hot);
}

}  // namespace perfxplain
