#include "log/catalog.h"

#include "common/logging.h"

namespace perfxplain {

const std::vector<std::string>& GangliaMetricNames() {
  static const std::vector<std::string>& metrics =
      *new std::vector<std::string>{
          "bytes_in",   "bytes_out",  "cpu_idle",    "cpu_nice",
          "cpu_system", "cpu_user",   "cpu_wio",     "disk_free",
          "load_fifteen", "load_five", "load_one",   "mem_buffers",
          "mem_cached", "mem_free",   "mem_shared",  "pkts_in",
          "pkts_out",   "proc_run",   "proc_total",  "swap_free",
      };
  return metrics;
}

namespace {

void AddOrDie(Schema& schema, const std::string& name, ValueKind kind) {
  PX_CHECK(schema.Add(name, kind).ok()) << name;
}

void AddGangliaAverages(Schema& schema) {
  for (const auto& metric : GangliaMetricNames()) {
    AddOrDie(schema, "avg_" + metric, ValueKind::kNumeric);
  }
}

}  // namespace

Schema MakeJobSchema() {
  Schema schema;
  // Configuration parameters (Table 2 of the paper plus derived counts).
  AddOrDie(schema, feature_names::kNumInstances, ValueKind::kNumeric);
  AddOrDie(schema, feature_names::kInputSize, ValueKind::kNumeric);
  AddOrDie(schema, feature_names::kBlockSize, ValueKind::kNumeric);
  AddOrDie(schema, feature_names::kReduceTasksFactor, ValueKind::kNumeric);
  AddOrDie(schema, feature_names::kNumReduceTasks, ValueKind::kNumeric);
  AddOrDie(schema, feature_names::kNumMapTasks, ValueKind::kNumeric);
  AddOrDie(schema, feature_names::kIoSortFactor, ValueKind::kNumeric);
  AddOrDie(schema, feature_names::kPigScript, ValueKind::kNominal);
  // Data characteristics.
  AddOrDie(schema, "input_records", ValueKind::kNumeric);
  AddOrDie(schema, "input_file", ValueKind::kNominal);
  // MapReduce counters aggregated over the job.
  AddOrDie(schema, "hdfs_bytes_read", ValueKind::kNumeric);
  AddOrDie(schema, "hdfs_bytes_written", ValueKind::kNumeric);
  AddOrDie(schema, "file_bytes_read", ValueKind::kNumeric);
  AddOrDie(schema, "file_bytes_written", ValueKind::kNumeric);
  AddOrDie(schema, "map_input_records", ValueKind::kNumeric);
  AddOrDie(schema, "map_output_records", ValueKind::kNumeric);
  AddOrDie(schema, "reduce_input_records", ValueKind::kNumeric);
  AddOrDie(schema, "reduce_output_records", ValueKind::kNumeric);
  // Timing details.
  AddOrDie(schema, "start_time", ValueKind::kNumeric);
  AddOrDie(schema, "avg_task_sorttime", ValueKind::kNumeric);
  AddOrDie(schema, "avg_task_shuffletime", ValueKind::kNumeric);
  // Cluster identity.
  AddOrDie(schema, "cluster_name", ValueKind::kNominal);
  // Ganglia averages percolated up from the job's tasks (§6.1).
  AddGangliaAverages(schema);
  // Runtime metric the queries are about.
  AddOrDie(schema, feature_names::kDuration, ValueKind::kNumeric);
  return schema;
}

Schema MakeTaskSchema() {
  Schema schema;
  // Identity.
  AddOrDie(schema, feature_names::kJobId, ValueKind::kNominal);
  AddOrDie(schema, feature_names::kTaskType, ValueKind::kNominal);
  AddOrDie(schema, feature_names::kTrackerName, ValueKind::kNominal);
  AddOrDie(schema, feature_names::kHostname, ValueKind::kNominal);
  // Job configuration copied onto every task.
  AddOrDie(schema, feature_names::kNumInstances, ValueKind::kNumeric);
  AddOrDie(schema, feature_names::kBlockSize, ValueKind::kNumeric);
  AddOrDie(schema, feature_names::kReduceTasksFactor, ValueKind::kNumeric);
  AddOrDie(schema, feature_names::kNumReduceTasks, ValueKind::kNumeric);
  AddOrDie(schema, feature_names::kNumMapTasks, ValueKind::kNumeric);
  AddOrDie(schema, feature_names::kIoSortFactor, ValueKind::kNumeric);
  AddOrDie(schema, feature_names::kPigScript, ValueKind::kNominal);
  AddOrDie(schema, "job_inputsize", ValueKind::kNumeric);
  // Task I/O (Hadoop log fields).
  AddOrDie(schema, feature_names::kInputSize, ValueKind::kNumeric);
  AddOrDie(schema, "map_input_bytes", ValueKind::kNumeric);
  AddOrDie(schema, "map_output_bytes", ValueKind::kNumeric);
  AddOrDie(schema, "map_input_records", ValueKind::kNumeric);
  AddOrDie(schema, "map_output_records", ValueKind::kNumeric);
  AddOrDie(schema, "reduce_input_bytes", ValueKind::kNumeric);
  AddOrDie(schema, "reduce_output_bytes", ValueKind::kNumeric);
  AddOrDie(schema, "hdfs_bytes_read", ValueKind::kNumeric);
  AddOrDie(schema, "hdfs_bytes_written", ValueKind::kNumeric);
  AddOrDie(schema, "file_bytes_read", ValueKind::kNumeric);
  AddOrDie(schema, "file_bytes_written", ValueKind::kNumeric);
  // Counters.
  AddOrDie(schema, "spilled_records", ValueKind::kNumeric);
  AddOrDie(schema, "combine_input_records", ValueKind::kNumeric);
  AddOrDie(schema, "combine_output_records", ValueKind::kNumeric);
  AddOrDie(schema, "gc_time_millis", ValueKind::kNumeric);
  // Timing.
  AddOrDie(schema, "starttime", ValueKind::kNumeric);
  AddOrDie(schema, "taskfinishtime", ValueKind::kNumeric);
  AddOrDie(schema, "sorttime", ValueKind::kNumeric);
  AddOrDie(schema, "shuffletime", ValueKind::kNumeric);
  AddOrDie(schema, "wave_index", ValueKind::kNumeric);
  AddOrDie(schema, "slot_index", ValueKind::kNumeric);
  // Ganglia averages over the task's execution window (§6.1).
  AddGangliaAverages(schema);
  // Runtime metric.
  AddOrDie(schema, feature_names::kDuration, ValueKind::kNumeric);
  return schema;
}

}  // namespace perfxplain
