#ifndef PERFXPLAIN_LOG_CATALOG_H_
#define PERFXPLAIN_LOG_CATALOG_H_

#include <string>
#include <vector>

#include "log/schema.h"

namespace perfxplain {

/// Feature catalogues mirroring what the paper's prototype collects (§6.1):
/// Hadoop job/task log fields plus Ganglia system metrics averaged over each
/// execution window. The paper records 36 job-level and 64 task-level
/// features; our catalogues cover the same categories (configuration
/// parameters, data characteristics, MapReduce counters, Ganglia averages).

/// Names of the Ganglia metrics we monitor per instance. Each appears in the
/// job/task schemas with an "avg_" prefix (average over the execution
/// window, §6.1).
const std::vector<std::string>& GangliaMetricNames();

/// Schema for MapReduce *job* executions:
/// Job(JobID, feature1, ..., featurek, duration).
Schema MakeJobSchema();

/// Schema for MapReduce *task* executions:
/// Task(TaskID, JobID, feature1, ..., featurel, duration).
Schema MakeTaskSchema();

/// Well-known feature names used by the evaluation queries (§6.2).
namespace feature_names {

inline constexpr const char kDuration[] = "duration";
inline constexpr const char kInputSize[] = "inputsize";
inline constexpr const char kNumInstances[] = "numinstances";
inline constexpr const char kPigScript[] = "pigscript";
inline constexpr const char kBlockSize[] = "blocksize";
inline constexpr const char kIoSortFactor[] = "iosortfactor";
inline constexpr const char kNumReduceTasks[] = "num_reduce_tasks";
inline constexpr const char kNumMapTasks[] = "num_map_tasks";
inline constexpr const char kReduceTasksFactor[] = "reduce_tasks_factor";
inline constexpr const char kJobId[] = "jobID";
inline constexpr const char kHostname[] = "hostname";
inline constexpr const char kTrackerName[] = "tracker_name";
inline constexpr const char kTaskType[] = "task_type";

}  // namespace feature_names

}  // namespace perfxplain

#endif  // PERFXPLAIN_LOG_CATALOG_H_
