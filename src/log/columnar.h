#ifndef PERFXPLAIN_LOG_COLUMNAR_H_
#define PERFXPLAIN_LOG_COLUMNAR_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <initializer_list>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "log/execution_log.h"
#include "log/schema.h"

namespace perfxplain {

/// Interns nominal strings to dense int32 codes. One interner is shared by
/// every nominal column of a ColumnarLog, so equal strings always map to
/// equal codes and string equality reduces to integer equality.
class StringInterner {
 public:
  static constexpr std::int32_t kNoCode = -1;

  /// The canonical categorical levels of Table 1 ("T", "F", "LT", "SIM",
  /// "GT") are pre-interned, in that order, so kernels can reference their
  /// codes without lookups.
  StringInterner();

  // Copying would leave the map's string_view keys pointing into the
  // source's deque. Moves are fine: deque elements never relocate.
  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;
  StringInterner(StringInterner&&) = default;
  StringInterner& operator=(StringInterner&&) = default;

  /// Deep copy with the index rebuilt against the copied deque. Because
  /// interning is append-only, a clone extended by the same string sequence
  /// assigns the same codes the source would — the property that lets an
  /// incremental ColumnarLog extension stay bitwise-equal to a cold rebuild.
  StringInterner Clone() const;

  /// Returns the code of `s`, inserting it if absent.
  std::int32_t Intern(std::string_view s);

  /// Returns the code of `s`, or kNoCode when it was never interned.
  std::int32_t Lookup(std::string_view s) const;

  const std::string& StringOf(std::int32_t code) const;
  std::size_t size() const { return strings_.size(); }

  std::int32_t true_code() const { return 0; }
  std::int32_t false_code() const { return 1; }
  std::int32_t lt_code() const { return 2; }
  std::int32_t sim_code() const { return 3; }
  std::int32_t gt_code() const { return 4; }

 private:
  // Deque: element addresses are stable under push_back, so the map's
  // string_view keys can point into the stored strings.
  std::deque<std::string> strings_;
  std::unordered_map<std::string_view, std::int32_t> index_;
};

/// Presence bitmap of one column: bit r set = row r has a value.
class PresenceBitmap {
 public:
  PresenceBitmap() = default;
  explicit PresenceBitmap(std::size_t rows) : words_((rows + 63) / 64, 0) {}

  void Set(std::size_t row) {
    words_[row >> 6] |= std::uint64_t{1} << (row & 63);
  }
  bool Test(std::size_t row) const {
    return (words_[row >> 6] >> (row & 63)) & 1;
  }

  /// Grows the bitmap to cover `rows` rows, preserving existing bits. New
  /// rows start absent. Shrinking is not supported.
  void Resize(std::size_t rows) {
    const std::size_t words = (rows + 63) / 64;
    if (words > words_.size()) words_.resize(words, 0);
  }

 private:
  std::vector<std::uint64_t> words_;
};

/// A numeric raw feature as a contiguous double array. Missing rows hold
/// 0.0 and are excluded via the presence bitmap.
struct NumericColumn {
  std::vector<double> values;
  PresenceBitmap present;
};

/// A nominal raw feature dictionary-encoded against the shared interner.
/// Missing rows hold StringInterner::kNoCode.
struct NominalColumn {
  std::vector<std::int32_t> codes;
};

/// An ordered pair of rows plus its Definition 8/9 label, as produced by
/// the columnar pair-enumeration fast path and consumed by the encoded
/// training-matrix builder.
struct PairRef {
  std::size_t first = 0;
  std::size_t second = 0;
  bool observed = false;
};

/// Column-oriented, dictionary-encoded copy of an ExecutionLog, built once
/// and scanned by the pair-feature kernels and compiled PXQL predicates.
/// The source log is not retained; the columnar form is self-contained.
///
/// Layout and value semantics:
///  - Numeric feature f -> NumericColumn: `values[row]` is the raw double,
///    `present` the missing bitmap. A missing cell stores 0.0 with its
///    presence bit clear — consumers must test presence before reading.
///    NaN is *data*, not missingness: a NaN cell is present, and the
///    kernels reproduce the Value path's NaN behavior (NaN is similar to
///    nothing, never equal to itself) bit for bit.
///  - Nominal feature f -> NominalColumn: `codes[row]` is the dense code
///    of the string in the shared StringInterner, or kNoCode when the
///    cell is missing. All nominal columns share one interner, so string
///    equality (even across columns) is integer code equality.
///
/// Thread safety: immutable after construction; any number of threads may
/// scan one ColumnarLog concurrently (the row-striped enumerations and the
/// striped RReliefF probe loop do exactly that). The column accessors
/// return stable references — compiled predicate programs cache the raw
/// pointers, so a ColumnarLog must outlive every program compiled against
/// it.
class ColumnarLog {
 public:
  explicit ColumnarLog(const ExecutionLog& log);

  /// Columnar form of a handful of ad-hoc records (not necessarily from any
  /// log; duplicate ids are fine). Each record's value count must match
  /// `schema`. Row r of the result is *records[r]. Used by the columnar
  /// IsApplicable to evaluate compiled predicates over one record pair
  /// without constructing a lazy PairFeatureView.
  ColumnarLog(const Schema& schema,
              std::initializer_list<const ExecutionRecord*> records);

  /// Incremental extension: columnar form of `full_log`, built by copying
  /// `base`'s columns and ingesting only rows [base.rows(), full_log.size()).
  /// Requires that `full_log` has the same schema as `base` and that its
  /// first base.rows() records are the records `base` was built from, in the
  /// same order (the snapshot-promotion path appends deltas after the old
  /// log, so this holds by construction). Because the interner is append-only
  /// and rows are ingested in log order, the result is bitwise identical to
  /// ColumnarLog(full_log) built cold — same codes, same column contents.
  ColumnarLog(const ColumnarLog& base, const ExecutionLog& full_log);

  std::size_t rows() const { return rows_; }
  const Schema& schema() const { return schema_; }
  const StringInterner& interner() const { return interner_; }

  bool is_numeric(std::size_t col) const {
    return schema_.at(col).kind == ValueKind::kNumeric;
  }
  const NumericColumn& numeric_column(std::size_t col) const;
  const NominalColumn& nominal_column(std::size_t col) const;

  /// Decodes one cell back to a Value (tests and diagnostics; the hot paths
  /// never materialize Values).
  Value ValueAt(std::size_t row, std::size_t col) const;

 private:
  /// Sizes the column pools for `rows_` rows of `schema_`.
  void AllocateColumns();
  /// Encodes one record into row `row` of the columns.
  void IngestRecord(std::size_t row, const ExecutionRecord& record);

  Schema schema_;
  std::size_t rows_ = 0;
  std::vector<std::int32_t> slot_;  ///< per raw column: index into a pool
  std::vector<NumericColumn> numeric_;
  std::vector<NominalColumn> nominal_;
  StringInterner interner_;
};

}  // namespace perfxplain

#endif  // PERFXPLAIN_LOG_COLUMNAR_H_
