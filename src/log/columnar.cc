#include "log/columnar.h"

#include "features/pair_schema.h"

namespace perfxplain {

StringInterner::StringInterner() {
  Intern(pair_values::kTrue);
  Intern(pair_values::kFalse);
  Intern(pair_values::kLt);
  Intern(pair_values::kSim);
  Intern(pair_values::kGt);
}

StringInterner StringInterner::Clone() const {
  StringInterner clone;
  // The default constructor pre-interns the canonical levels, which are the
  // first entries of strings_; replaying the deque in order is idempotent
  // for them and reproduces every code assignment exactly.
  for (const std::string& s : strings_) clone.Intern(s);
  return clone;
}

std::int32_t StringInterner::Intern(std::string_view s) {
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  const auto code = static_cast<std::int32_t>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(std::string_view(strings_.back()), code);
  return code;
}

std::int32_t StringInterner::Lookup(std::string_view s) const {
  auto it = index_.find(s);
  return it == index_.end() ? kNoCode : it->second;
}

const std::string& StringInterner::StringOf(std::int32_t code) const {
  PX_CHECK_GE(code, 0);
  PX_CHECK_LT(static_cast<std::size_t>(code), strings_.size());
  return strings_[static_cast<std::size_t>(code)];
}

void ColumnarLog::AllocateColumns() {
  const std::size_t k = schema_.size();
  slot_.resize(k);
  for (std::size_t col = 0; col < k; ++col) {
    if (is_numeric(col)) {
      slot_[col] = static_cast<std::int32_t>(numeric_.size());
      NumericColumn column;
      column.values.assign(rows_, 0.0);
      column.present = PresenceBitmap(rows_);
      numeric_.push_back(std::move(column));
    } else {
      slot_[col] = static_cast<std::int32_t>(nominal_.size());
      NominalColumn column;
      column.codes.assign(rows_, StringInterner::kNoCode);
      nominal_.push_back(std::move(column));
    }
  }
}

void ColumnarLog::IngestRecord(std::size_t row, const ExecutionRecord& record) {
  const std::size_t k = schema_.size();
  for (std::size_t col = 0; col < k; ++col) {
    const Value& v = record.values[col];
    if (v.is_missing()) continue;
    if (is_numeric(col)) {
      NumericColumn& column = numeric_[static_cast<std::size_t>(slot_[col])];
      column.values[row] = v.number();
      column.present.Set(row);
    } else {
      nominal_[static_cast<std::size_t>(slot_[col])].codes[row] =
          interner_.Intern(v.nominal());
    }
  }
}

ColumnarLog::ColumnarLog(const ExecutionLog& log)
    : schema_(log.schema()), rows_(log.size()) {
  AllocateColumns();
  for (std::size_t row = 0; row < rows_; ++row) {
    IngestRecord(row, log.at(row));
  }
}

ColumnarLog::ColumnarLog(const Schema& schema,
                         std::initializer_list<const ExecutionRecord*> records)
    : schema_(schema), rows_(records.size()) {
  AllocateColumns();
  std::size_t row = 0;
  for (const ExecutionRecord* record : records) {
    PX_CHECK(record != nullptr);
    PX_CHECK_EQ(record->values.size(), schema_.size())
        << "record does not match the schema";
    IngestRecord(row++, *record);
  }
}

ColumnarLog::ColumnarLog(const ColumnarLog& base, const ExecutionLog& full_log)
    : schema_(base.schema_),
      rows_(full_log.size()),
      slot_(base.slot_),
      numeric_(base.numeric_),
      nominal_(base.nominal_),
      interner_(base.interner_.Clone()) {
  PX_CHECK_GE(rows_, base.rows_) << "extension log shrank";
  PX_CHECK_EQ(full_log.schema().size(), schema_.size())
      << "extension log schema mismatch";
  for (NumericColumn& column : numeric_) {
    column.values.resize(rows_, 0.0);
    column.present.Resize(rows_);
  }
  for (NominalColumn& column : nominal_) {
    column.codes.resize(rows_, StringInterner::kNoCode);
  }
  for (std::size_t row = base.rows_; row < rows_; ++row) {
    IngestRecord(row, full_log.at(row));
  }
}

const NumericColumn& ColumnarLog::numeric_column(std::size_t col) const {
  PX_CHECK(is_numeric(col));
  return numeric_[static_cast<std::size_t>(slot_[col])];
}

const NominalColumn& ColumnarLog::nominal_column(std::size_t col) const {
  PX_CHECK(!is_numeric(col));
  return nominal_[static_cast<std::size_t>(slot_[col])];
}

Value ColumnarLog::ValueAt(std::size_t row, std::size_t col) const {
  PX_CHECK_LT(row, rows_);
  if (is_numeric(col)) {
    const NumericColumn& column = numeric_column(col);
    if (!column.present.Test(row)) return Value::Missing();
    return Value::Number(column.values[row]);
  }
  const std::int32_t code = nominal_column(col).codes[row];
  if (code == StringInterner::kNoCode) return Value::Missing();
  return Value::Nominal(interner_.StringOf(code));
}

}  // namespace perfxplain
