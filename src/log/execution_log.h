#ifndef PERFXPLAIN_LOG_EXECUTION_LOG_H_
#define PERFXPLAIN_LOG_EXECUTION_LOG_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/value.h"
#include "log/schema.h"

namespace perfxplain {

/// One logged execution (a MapReduce job or task): an identifier plus one
/// Value per schema feature. The paper's Job/Task relations (§3.1); the
/// runtime metric of interest ("duration") is itself a feature so the
/// obs/exp predicates can refer to duration_compare etc.
struct ExecutionRecord {
  std::string id;
  std::vector<Value> values;

  ExecutionRecord() = default;
  ExecutionRecord(std::string record_id, std::vector<Value> vals)
      : id(std::move(record_id)), values(std::move(vals)) {}
};

/// A log of past executions sharing one Schema. This is PerfXplain's only
/// input besides the PXQL query: explanations are mined from it and the
/// quality metrics are measured against it.
class ExecutionLog {
 public:
  ExecutionLog() = default;
  explicit ExecutionLog(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  const ExecutionRecord& at(std::size_t i) const;
  const std::vector<ExecutionRecord>& records() const { return records_; }

  /// Appends `record`; its value count must match the schema and its id must
  /// be unique within the log.
  Status Add(ExecutionRecord record);

  /// Index of the record with `id`, or error when absent.
  Result<std::size_t> Find(const std::string& id) const;

  /// Value of feature `feature_index` of record `record_index`.
  const Value& ValueAt(std::size_t record_index,
                       std::size_t feature_index) const;

  /// Records for which `keep` returns true, as a new log (same schema).
  ExecutionLog Filter(
      const std::function<bool(const ExecutionRecord&)>& keep) const;

  /// Randomly assigns each record to the first log with probability
  /// `first_fraction` (2-fold split of §6.1 uses 0.5). Both halves share
  /// this log's schema.
  std::pair<ExecutionLog, ExecutionLog> RandomSplit(double first_fraction,
                                                    Rng& rng) const;

  /// Ensures `ids` are present in this log by copying them from `source`
  /// (used by the different-job experiment, §6.5, where the log consists of
  /// other jobs "plus the pair of interest"). Ids already present are kept.
  Status EnsureRecords(const ExecutionLog& source,
                       const std::vector<std::string>& ids);

  /// CSV persistence. First row: "id,<f1>,<f2>,..."; second row: feature
  /// kinds ("numeric"/"nominal"); then one row per record with "?" for
  /// missing values.
  Status SaveCsv(const std::string& path) const;
  static Result<ExecutionLog> LoadCsv(const std::string& path);

  /// Same format as an in-memory text blob (the checkpoint writer
  /// checksums these bytes before they reach disk, so what the CRC covers
  /// is exactly what a recovery will parse). `context` labels parse
  /// errors (a path or description).
  std::string ToCsvText() const;
  static Result<ExecutionLog> FromCsvText(const std::string& text,
                                          const std::string& context);

 private:
  Schema schema_;
  std::vector<ExecutionRecord> records_;
  std::unordered_map<std::string, std::size_t> by_id_;
};

}  // namespace perfxplain

#endif  // PERFXPLAIN_LOG_EXECUTION_LOG_H_
