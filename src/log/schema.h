#ifndef PERFXPLAIN_LOG_SCHEMA_H_
#define PERFXPLAIN_LOG_SCHEMA_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace perfxplain {

/// Describes one raw feature of a job or task execution: a name and whether
/// the feature is numeric or nominal. Mirrors the paper's data model (§3.1),
/// where every configuration parameter, data characteristic and runtime
/// metric is a feature.
struct FeatureDef {
  std::string name;
  ValueKind kind = ValueKind::kNumeric;

  FeatureDef() = default;
  FeatureDef(std::string n, ValueKind k) : name(std::move(n)), kind(k) {}

  friend bool operator==(const FeatureDef& a, const FeatureDef& b) {
    return a.name == b.name && a.kind == b.kind;
  }
};

/// An ordered, named collection of FeatureDefs with O(1) name lookup.
///
/// The schema of an ExecutionLog; also the "raw" side from which the
/// pair-feature schema (Table 1) is derived. Feature names are unique.
class Schema {
 public:
  Schema() = default;

  /// Appends a feature. Fails if the name already exists.
  Status Add(FeatureDef def);
  Status Add(std::string name, ValueKind kind) {
    return Add(FeatureDef(std::move(name), kind));
  }

  std::size_t size() const { return defs_.size(); }
  const FeatureDef& at(std::size_t i) const;
  const std::vector<FeatureDef>& defs() const { return defs_; }

  /// Index of `name`, or npos when absent.
  static constexpr std::size_t kNotFound = static_cast<std::size_t>(-1);
  std::size_t IndexOf(const std::string& name) const;
  bool Contains(const std::string& name) const {
    return IndexOf(name) != kNotFound;
  }

  /// Index of `name`; error status when absent.
  Result<std::size_t> Require(const std::string& name) const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.defs_ == b.defs_;
  }

 private:
  std::vector<FeatureDef> defs_;
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace perfxplain

#endif  // PERFXPLAIN_LOG_SCHEMA_H_
