#include "log/schema.h"

namespace perfxplain {

Status Schema::Add(FeatureDef def) {
  if (index_.count(def.name) > 0) {
    return Status::InvalidArgument("duplicate feature name: " + def.name);
  }
  index_.emplace(def.name, defs_.size());
  defs_.push_back(std::move(def));
  return Status::OK();
}

const FeatureDef& Schema::at(std::size_t i) const {
  PX_CHECK_LT(i, defs_.size());
  return defs_[i];
}

std::size_t Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return kNotFound;
  return it->second;
}

Result<std::size_t> Schema::Require(const std::string& name) const {
  const std::size_t i = IndexOf(name);
  if (i == kNotFound) {
    return Status::NotFound("no such feature: " + name);
  }
  return i;
}

}  // namespace perfxplain
