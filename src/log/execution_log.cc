#include "log/execution_log.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "common/csv.h"

namespace perfxplain {

const ExecutionRecord& ExecutionLog::at(std::size_t i) const {
  PX_CHECK_LT(i, records_.size());
  return records_[i];
}

Status ExecutionLog::Add(ExecutionRecord record) {
  if (record.values.size() != schema_.size()) {
    return Status::InvalidArgument(
        "record '" + record.id + "' has " +
        std::to_string(record.values.size()) + " values, schema has " +
        std::to_string(schema_.size()));
  }
  if (by_id_.count(record.id) > 0) {
    return Status::InvalidArgument("duplicate record id: " + record.id);
  }
  for (std::size_t f = 0; f < record.values.size(); ++f) {
    const Value& v = record.values[f];
    if (!v.is_missing() &&
        v.kind() != schema_.at(f).kind) {
      return Status::InvalidArgument(
          "record '" + record.id + "' feature '" + schema_.at(f).name +
          "' has wrong kind");
    }
  }
  by_id_.emplace(record.id, records_.size());
  records_.push_back(std::move(record));
  return Status::OK();
}

Result<std::size_t> ExecutionLog::Find(const std::string& id) const {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    return Status::NotFound("no record with id: " + id);
  }
  return it->second;
}

const Value& ExecutionLog::ValueAt(std::size_t record_index,
                                   std::size_t feature_index) const {
  PX_CHECK_LT(record_index, records_.size());
  PX_CHECK_LT(feature_index, schema_.size());
  return records_[record_index].values[feature_index];
}

ExecutionLog ExecutionLog::Filter(
    const std::function<bool(const ExecutionRecord&)>& keep) const {
  ExecutionLog out(schema_);
  for (const auto& record : records_) {
    if (keep(record)) {
      PX_CHECK(out.Add(record).ok());
    }
  }
  return out;
}

std::pair<ExecutionLog, ExecutionLog> ExecutionLog::RandomSplit(
    double first_fraction, Rng& rng) const {
  ExecutionLog first(schema_);
  ExecutionLog second(schema_);
  for (const auto& record : records_) {
    if (rng.Bernoulli(first_fraction)) {
      PX_CHECK(first.Add(record).ok());
    } else {
      PX_CHECK(second.Add(record).ok());
    }
  }
  return {std::move(first), std::move(second)};
}

Status ExecutionLog::EnsureRecords(const ExecutionLog& source,
                                   const std::vector<std::string>& ids) {
  if (!(source.schema() == schema_)) {
    return Status::InvalidArgument("EnsureRecords: schema mismatch");
  }
  for (const std::string& id : ids) {
    if (by_id_.count(id) > 0) continue;
    auto idx = source.Find(id);
    if (!idx.ok()) return idx.status();
    PX_RETURN_IF_ERROR(Add(source.at(idx.value())));
  }
  return Status::OK();
}

std::string ExecutionLog::ToCsvText() const {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header = {"id"};
  std::vector<std::string> kinds = {"id"};
  for (const auto& def : schema_.defs()) {
    header.push_back(def.name);
    kinds.push_back(def.kind == ValueKind::kNumeric ? "numeric" : "nominal");
  }
  rows.push_back(std::move(header));
  rows.push_back(std::move(kinds));
  for (const auto& record : records_) {
    std::vector<std::string> row = {record.id};
    for (const auto& v : record.values) row.push_back(v.ToString());
    rows.push_back(std::move(row));
  }
  return CsvEncodeRows(rows);
}

Result<ExecutionLog> ExecutionLog::FromCsvText(const std::string& text,
                                               const std::string& context) {
  auto rows_or = CsvParseText(text, context);
  if (!rows_or.ok()) return rows_or.status();
  const auto& rows = rows_or.value();
  if (rows.size() < 2) {
    return Status::ParseError("log CSV needs header and kind rows: " +
                              context);
  }
  const auto& header = rows[0];
  const auto& kinds = rows[1];
  if (header.size() != kinds.size() || header.empty() || header[0] != "id") {
    return Status::ParseError("malformed log CSV header: " + context);
  }
  Schema schema;
  for (std::size_t i = 1; i < header.size(); ++i) {
    ValueKind kind;
    if (kinds[i] == "numeric") {
      kind = ValueKind::kNumeric;
    } else if (kinds[i] == "nominal") {
      kind = ValueKind::kNominal;
    } else {
      return Status::ParseError("unknown feature kind '" + kinds[i] + "'");
    }
    PX_RETURN_IF_ERROR(schema.Add(header[i], kind));
  }
  ExecutionLog log(std::move(schema));
  for (std::size_t r = 2; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() != header.size()) {
      return Status::ParseError("row " + std::to_string(r) +
                                " has wrong arity in " + context);
    }
    std::vector<Value> values;
    values.reserve(row.size() - 1);
    for (std::size_t i = 1; i < row.size(); ++i) {
      values.push_back(
          Value::FromString(row[i], log.schema().at(i - 1).kind));
    }
    PX_RETURN_IF_ERROR(log.Add(ExecutionRecord(row[0], std::move(values))));
  }
  return log;
}

Status ExecutionLog::SaveCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << ToCsvText();
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<ExecutionLog> ExecutionLog::LoadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed: " + path);
  return FromCsvText(buffer.str(), path);
}

}  // namespace perfxplain
