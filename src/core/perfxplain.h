#ifndef PERFXPLAIN_CORE_PERFXPLAIN_H_
#define PERFXPLAIN_CORE_PERFXPLAIN_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "core/explainer.h"
#include "core/explanation.h"
#include "core/metrics.h"
#include "core/rule_of_thumb.h"
#include "core/sim_but_diff.h"
#include "log/execution_log.h"
#include "pxql/parser.h"
#include "pxql/query.h"

namespace perfxplain {

/// Which explanation-generation technique to run (§4 and §5).
enum class Technique {
  kPerfXplain,
  kRuleOfThumb,
  kSimButDiff,
};

const char* TechniqueToString(Technique technique);

/// Top-level facade: owns a log of past executions (jobs or tasks) and
/// answers PXQL queries against it.
///
/// Typical use:
///   PerfXplain system(std::move(job_log));
///   auto explanation = system.ExplainText(
///       "FOR J1, J2 WHERE J1.JobID = 'job_000001' AND "
///       "J2.JobID = 'job_000002' "
///       "DESPITE numinstances_isSame = T "
///       "OBSERVED duration_compare = GT EXPECTED duration_compare = SIM");
class PerfXplain {
 public:
  struct Options {
    ExplainerOptions explainer;
    RuleOfThumbOptions rule_of_thumb;
    SimButDiffOptions sim_but_diff;
  };

  explicit PerfXplain(ExecutionLog log, Options options = {});

  PerfXplain(const PerfXplain&) = delete;
  PerfXplain& operator=(const PerfXplain&) = delete;

  const ExecutionLog& log() const { return log_; }
  const PairSchema& pair_schema() const { return explainer_->pair_schema(); }
  const Explainer& explainer() const { return *explainer_; }

  /// Parses and answers a PXQL query with the PerfXplain technique
  /// (because clause only, the default mode).
  Result<Explanation> ExplainText(const std::string& pxql) const;
  Result<Explanation> Explain(const Query& query) const;

  /// Explicitly requests a machine-generated despite clause (§6.4).
  Result<Predicate> GenerateDespiteText(const std::string& pxql) const;
  Result<Predicate> GenerateDespite(const Query& query) const;

  /// des' + bec in one shot.
  Result<Explanation> ExplainWithAutoDespite(const Query& query) const;

  /// Runs one of the three techniques at the given width.
  Result<Explanation> ExplainWith(Technique technique, const Query& query,
                                  std::size_t width) const;

  /// Measures an explanation's metrics over this system's log.
  Result<ExplanationMetrics> Evaluate(const Query& query,
                                      const Explanation& explanation) const;

  /// Measures an explanation over a different log (e.g., the held-out test
  /// log of the §6.1 protocol), which must share this log's schema.
  Result<ExplanationMetrics> EvaluateOn(const ExecutionLog& test_log,
                                        const Query& query,
                                        const Explanation& explanation) const;

 private:
  ExecutionLog log_;
  Options options_;
  std::unique_ptr<Explainer> explainer_;
  mutable std::unique_ptr<RuleOfThumb> rule_of_thumb_;  // built lazily
  std::unique_ptr<SimButDiff> sim_but_diff_;
};

}  // namespace perfxplain

#endif  // PERFXPLAIN_CORE_PERFXPLAIN_H_
