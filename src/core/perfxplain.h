#ifndef PERFXPLAIN_CORE_PERFXPLAIN_H_
#define PERFXPLAIN_CORE_PERFXPLAIN_H_

#include <string>

#include "common/status.h"
#include "core/engine.h"
#include "core/explainer.h"
#include "core/explanation.h"
#include "core/metrics.h"
#include "core/rule_of_thumb.h"
#include "core/sim_but_diff.h"
#include "log/execution_log.h"
#include "pxql/parser.h"
#include "pxql/query.h"

namespace perfxplain {

/// DEPRECATED single-tenant facade, kept as a thin shim over Engine for
/// source compatibility. Every call re-prepares its query; new code should
/// hold an Engine, Prepare once, and reuse the PreparedQuery:
///
///   Engine engine(std::move(job_log));
///   auto prepared = engine.PrepareText("FOR J1, J2 WHERE ...");
///   auto response = engine.Explain(*prepared, {});
///
/// The shim is pinned bitwise against Engine by
/// tests/core/baseline_equivalence_test.cc. It inherits Engine's
/// concurrency fixes: the RuleOfThumb ranking that the old facade built
/// lazily under `const` (a data race for concurrent callers) is now
/// initialized behind std::call_once inside Engine.
class PerfXplain {
 public:
  using Options = EngineOptions;

  explicit PerfXplain(ExecutionLog log, Options options = {});

  PerfXplain(const PerfXplain&) = delete;
  PerfXplain& operator=(const PerfXplain&) = delete;

  const ExecutionLog& log() const { return engine_.log(); }
  const PairSchema& pair_schema() const { return engine_.pair_schema(); }
  const Explainer& explainer() const { return engine_.explainer(); }

  /// The Engine behind this shim, for callers migrating incrementally.
  const Engine& engine() const { return engine_; }

  /// Parses and answers a PXQL query with the PerfXplain technique
  /// (because clause only, the default mode).
  Result<Explanation> ExplainText(const std::string& pxql) const;
  Result<Explanation> Explain(const Query& query) const;

  /// Explicitly requests a machine-generated despite clause (§6.4).
  Result<Predicate> GenerateDespiteText(const std::string& pxql) const;
  Result<Predicate> GenerateDespite(const Query& query) const;

  /// des' + bec in one shot.
  Result<Explanation> ExplainWithAutoDespite(const Query& query) const;

  /// Runs one of the three techniques at the given width.
  Result<Explanation> ExplainWith(Technique technique, const Query& query,
                                  std::size_t width) const;

  /// Measures an explanation's metrics over this system's log.
  Result<ExplanationMetrics> Evaluate(const Query& query,
                                      const Explanation& explanation) const;

  /// Measures an explanation over a different log (e.g., the held-out test
  /// log of the §6.1 protocol), which must share this log's schema.
  Result<ExplanationMetrics> EvaluateOn(const ExecutionLog& test_log,
                                        const Query& query,
                                        const Explanation& explanation) const;

 private:
  Engine engine_;
};

}  // namespace perfxplain

#endif  // PERFXPLAIN_CORE_PERFXPLAIN_H_
