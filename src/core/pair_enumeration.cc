#include "core/pair_enumeration.h"

#include <algorithm>
#include <atomic>
#include <optional>
#include <thread>

namespace perfxplain {

namespace {

std::atomic<int> g_default_threads{0};

}  // namespace

void ForEachOrderedPair(
    const ExecutionLog& log, const PairSchema& schema,
    const PairFeatureOptions& options,
    const std::function<bool(std::size_t, std::size_t,
                             const PairFeatureView&)>& fn) {
  ForEachOrderedPair<const std::function<bool(
      std::size_t, std::size_t, const PairFeatureView&)>&>(log, schema,
                                                           options, fn);
}

PairLabel ClassifyPair(const Query& bound_query, const PairFeatureView& view) {
  if (!bound_query.despite.Eval(view)) return PairLabel::kUnrelated;
  if (bound_query.observed.Eval(view)) return PairLabel::kObserved;
  if (bound_query.expected.Eval(view)) return PairLabel::kExpected;
  return PairLabel::kUnrelated;
}

PairLabel ClassifyPairCompiled(const CompiledQuery& query, std::size_t i,
                               std::size_t j, double sim_fraction) {
  if (!query.despite.Eval(i, j, sim_fraction)) {
    return PairLabel::kUnrelated;
  }
  if (query.observed.Eval(i, j, sim_fraction)) {
    return PairLabel::kObserved;
  }
  if (query.expected.Eval(i, j, sim_fraction)) {
    return PairLabel::kExpected;
  }
  return PairLabel::kUnrelated;
}

void SetDefaultEnumerationThreads(int threads) {
  g_default_threads.store(threads < 0 ? 0 : threads);
}

int ResolveEnumerationThreads(const EnumerationOptions& options) {
  int threads = options.threads;
  if (threads <= 0) threads = g_default_threads.load();
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  return threads <= 0 ? 1 : threads;
}

RelatedCounts CountRelatedPairs(const ExecutionLog& log,
                                const PairSchema& schema,
                                const Query& bound_query,
                                const PairFeatureOptions& options) {
  const ColumnarLog columns(log);
  const CompiledQuery compiled =
      CompiledQuery::Compile(bound_query, schema, columns);
  return CountRelatedPairs(columns, compiled, options.sim_fraction);
}

RelatedCounts CountRelatedPairs(const ColumnarLog& columns,
                                const CompiledQuery& query,
                                double sim_fraction,
                                const EnumerationOptions& enumeration) {
  const std::size_t n = columns.rows();
  // A pair failing des (or satisfying neither obs nor exp) is unrelated, so
  // an always-false despite clause relates nothing.
  if (query.despite.always_false()) return RelatedCounts{};
  std::vector<RelatedCounts> partial;
  ScanDespitePairs(query.despite, n, enumeration, partial,
                   [&](RelatedCounts& local, std::size_t i, std::size_t j) {
                     switch (ClassifyPairCompiled(query, i, j,
                                                  sim_fraction)) {
                       case PairLabel::kObserved:
                         ++local.observed;
                         break;
                       case PairLabel::kExpected:
                         ++local.expected;
                         break;
                       case PairLabel::kUnrelated:
                         break;
                     }
                   });
  RelatedCounts counts;
  for (const RelatedCounts& local : partial) {
    counts.observed += local.observed;
    counts.expected += local.expected;
  }
  return counts;
}

std::vector<PairRef> CollectRelatedPairs(const ColumnarLog& columns,
                                         const CompiledQuery& query,
                                         double sim_fraction,
                                         const EnumerationOptions&
                                             enumeration) {
  const std::size_t n = columns.rows();
  if (query.despite.always_false()) return {};
  std::vector<std::vector<PairRef>> partial;
  ScanDespitePairs(query.despite, n, enumeration, partial,
                   [&](std::vector<PairRef>& local, std::size_t i,
                       std::size_t j) {
                     const PairLabel label = ClassifyPairCompiled(
                         query, i, j, sim_fraction);
                     if (label == PairLabel::kUnrelated) return;
                     local.push_back({i, j,
                                      label == PairLabel::kObserved});
                   });
  // Stripes cover ascending row ranges, so concatenating them in block
  // order reproduces the row-major enumeration order exactly.
  std::size_t total = 0;
  for (const auto& local : partial) total += local.size();
  std::vector<PairRef> related;
  related.reserve(total);
  for (auto& local : partial) {
    related.insert(related.end(), local.begin(), local.end());
  }
  return related;
}

RelatedPairScan ScanRelatedPairs(const ColumnarLog& columns,
                                 const CompiledQuery& query,
                                 double sim_fraction,
                                 const EnumerationOptions& enumeration) {
  // One parallel pass produces the §4.3 label counts and, while the total
  // stays under the buffer cap, the related pairs themselves. A broad
  // despite clause that relates almost every ordered pair overflows the
  // cap; the buffers are then discarded and callers fall back to a second,
  // streaming draw scan, keeping memory O(accepted).
  const std::size_t n = columns.rows();
  const std::size_t cap = enumeration.sample_buffer_cap;
  struct StripeState {
    RelatedCounts counts;
    std::vector<PairRef> pairs;
  };
  std::vector<StripeState> partial;
  std::atomic<std::size_t> buffered{0};
  std::atomic<bool> overflow{cap == 0};
  if (!query.despite.always_false()) {
    ScanDespitePairs(
        query.despite, n, enumeration, partial,
        [&](StripeState& local, std::size_t i, std::size_t j) {
          const PairLabel label =
              ClassifyPairCompiled(query, i, j, sim_fraction);
          if (label == PairLabel::kUnrelated) return;
          const bool observed = label == PairLabel::kObserved;
          if (observed) {
            ++local.counts.observed;
          } else {
            ++local.counts.expected;
          }
          if (!overflow.load(std::memory_order_relaxed)) {
            if (buffered.fetch_add(1, std::memory_order_relaxed) < cap) {
              local.pairs.push_back({i, j, observed});
            } else {
              overflow.store(true, std::memory_order_relaxed);
            }
          }
        });
  }
  RelatedPairScan scan;
  for (const StripeState& local : partial) {
    scan.counts.observed += local.counts.observed;
    scan.counts.expected += local.counts.expected;
  }
  scan.overflowed = overflow.load();
  if (!scan.overflowed) {
    // Stripes ascend, so concatenating the buffers in stripe order is the
    // row-major order the draw replay needs.
    scan.related.reserve(scan.counts.total());
    for (StripeState& local : partial) {
      scan.related.insert(scan.related.end(), local.pairs.begin(),
                          local.pairs.end());
    }
  }
  return scan;
}

namespace {

/// The §4.3 per-label acceptance probabilities: balanced sampling aims
/// m/2 examples per label (clamped to 1), uniform sampling m overall.
/// One definition shared by the buffered replay and the streaming
/// fallback, so the two memory strategies can never drift apart.
struct AcceptanceProbabilities {
  double observed = 0.0;
  double expected = 0.0;
};

AcceptanceProbabilities ComputeAcceptance(
    const RelatedCounts& counts, const SamplerOptions& sampler_options,
    bool balanced) {
  const double m = static_cast<double>(sampler_options.sample_size);
  AcceptanceProbabilities p;
  if (balanced) {
    p.observed =
        counts.observed == 0
            ? 0.0
            : std::min(1.0, m / (2.0 * static_cast<double>(counts.observed)));
    p.expected =
        counts.expected == 0
            ? 0.0
            : std::min(1.0,
                       m / (2.0 * static_cast<double>(counts.expected)));
  } else {
    const double uniform =
        std::min(1.0, m / static_cast<double>(counts.total()));
    p.observed = uniform;
    p.expected = uniform;
  }
  return p;
}

}  // namespace

Result<std::vector<PairRef>> ReplaySampleDraws(
    const RelatedPairScan& scan, std::size_t rows, std::size_t poi_first,
    std::size_t poi_second, const SamplerOptions& sampler_options, Rng& rng,
    bool balanced) {
  PX_CHECK(!scan.overflowed);
  if (poi_first >= rows || poi_second >= rows || poi_first == poi_second) {
    return Status::InvalidArgument("pair of interest indexes out of range");
  }
  const RelatedCounts& counts = scan.counts;
  if (counts.total() == 0) {
    return Status::FailedPrecondition(
        "no pairs in the log are related to the query");
  }
  const AcceptanceProbabilities p =
      ComputeAcceptance(counts, sampler_options, balanced);

  // The acceptance draws happen serially in row-major related-pair order
  // (one Bernoulli per related pair except the pair of interest) — exactly
  // the draw sequence of the legacy two-pass enumeration, for any thread
  // count, any pruning decision, and either memory strategy.
  std::vector<PairRef> sampled;
  sampled.reserve(std::min<std::size_t>(
      sampler_options.sample_size + 1, counts.total() + 1));
  sampled.push_back({poi_first, poi_second, true});
  for (const PairRef& pair : scan.related) {
    if (pair.first == poi_first && pair.second == poi_second) continue;
    if (!rng.Bernoulli(pair.observed ? p.observed : p.expected)) {
      continue;
    }
    sampled.push_back(pair);
  }
  return sampled;
}

Result<std::vector<PairRef>> SampleRelatedPairs(
    const ColumnarLog& columns, const CompiledQuery& query,
    std::size_t poi_first, std::size_t poi_second, double sim_fraction,
    const SamplerOptions& sampler_options, Rng& rng, bool balanced,
    const EnumerationOptions& enumeration) {
  const std::size_t n = columns.rows();
  if (poi_first >= n || poi_second >= n || poi_first == poi_second) {
    return Status::InvalidArgument("pair of interest indexes out of range");
  }
  RelatedPairScan scan =
      ScanRelatedPairs(columns, query, sim_fraction, enumeration);
  if (!scan.overflowed) {
    return ReplaySampleDraws(scan, n, poi_first, poi_second, sampler_options,
                             rng, balanced);
  }
  if (scan.counts.total() == 0) {
    return Status::FailedPrecondition(
        "no pairs in the log are related to the query");
  }
  const AcceptanceProbabilities p =
      ComputeAcceptance(scan.counts, sampler_options, balanced);
  // Streaming second pass: the related pairs did not fit the buffer, so
  // the draws run against a fresh serial enumeration. Selection pruning
  // keeps the surviving pairs and their order unchanged (pruned pairs are
  // unrelated and consume no draw), so the sampled set matches the
  // unpruned scan bit for bit.
  std::vector<PairRef> sampled;
  sampled.reserve(sampler_options.sample_size + 1);
  sampled.push_back({poi_first, poi_second, true});
  const PairSelection selection = enumeration.prune
                                      ? query.despite.DeriveSelection(n)
                                      : PairSelection{};
  const auto draw_pair = [&](std::size_t i, std::size_t j) {
    if (i == j) return;
    if (i == poi_first && j == poi_second) return;
    const PairLabel label = ClassifyPairCompiled(query, i, j, sim_fraction);
    if (label == PairLabel::kUnrelated) return;
    const bool observed = label == PairLabel::kObserved;
    if (!rng.Bernoulli(observed ? p.observed : p.expected)) return;
    sampled.push_back({i, j, observed});
  };
  if (selection.constrained) {
    for (std::uint32_t i : selection.first_rows) {
      ThrowIfInterrupted();
      for (std::uint32_t j : selection.second_rows) {
        draw_pair(i, j);
      }
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      ThrowIfInterrupted();
      for (std::size_t j = 0; j < n; ++j) {
        draw_pair(i, j);
      }
    }
  }
  return sampled;
}

Result<std::vector<TrainingExample>> BuildTrainingExamples(
    const ExecutionLog& log, const PairSchema& schema,
    const Query& bound_query, std::size_t poi_first, std::size_t poi_second,
    const PairFeatureOptions& pair_options,
    const SamplerOptions& sampler_options, Rng& rng, bool balanced) {
  const ColumnarLog columns(log);
  const CompiledQuery compiled =
      CompiledQuery::Compile(bound_query, schema, columns);
  auto sampled = SampleRelatedPairs(columns, compiled, poi_first, poi_second,
                                    pair_options.sim_fraction,
                                    sampler_options, rng, balanced);
  if (!sampled.ok()) return sampled.status();

  std::vector<TrainingExample> examples;
  examples.reserve(sampled->size());
  for (const PairRef& pair : *sampled) {
    PairFeatureView view(&schema, &log.at(pair.first), &log.at(pair.second),
                         &pair_options);
    TrainingExample example;
    example.first = pair.first;
    example.second = pair.second;
    example.observed = pair.observed;
    example.features = view.Materialize();
    examples.push_back(std::move(example));
  }
  return examples;
}

Result<std::pair<std::size_t, std::size_t>> FindPairOfInterest(
    const ExecutionLog& log, const PairSchema& schema,
    const Query& bound_query, const PairFeatureOptions& options,
    std::size_t skip) {
  const ColumnarLog columns(log);
  const CompiledQuery compiled =
      CompiledQuery::Compile(bound_query, schema, columns);
  return FindPairOfInterest(columns, compiled, options.sim_fraction, skip);
}

Result<std::pair<std::size_t, std::size_t>> FindPairOfInterest(
    const ColumnarLog& columns, const CompiledQuery& query,
    double sim_fraction, std::size_t skip) {
  const std::size_t n = columns.rows();
  std::size_t remaining = skip;
  if (!query.despite.always_false()) {
    // Selection pruning preserves the row-major order of matching pairs
    // (pruned pairs fail des), so `skip` counts the same sequence.
    const PairSelection selection = query.despite.DeriveSelection(n);
    std::optional<std::pair<std::size_t, std::size_t>> found;
    const auto visit = [&](std::size_t i, std::size_t j) {
      if (i == j) return false;
      if (ClassifyPairCompiled(query, i, j, sim_fraction) !=
          PairLabel::kObserved) {
        return false;
      }
      if (remaining > 0) {
        --remaining;
        return false;
      }
      found = std::make_pair(i, j);
      return true;
    };
    if (selection.constrained) {
      for (std::uint32_t i : selection.first_rows) {
        ThrowIfInterrupted();
        for (std::uint32_t j : selection.second_rows) {
          if (visit(i, j)) return *found;
        }
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        ThrowIfInterrupted();
        for (std::size_t j = 0; j < n; ++j) {
          if (visit(i, j)) return *found;
        }
      }
    }
  }
  return Status::NotFound(
      "no pair in the log satisfies DESPITE and OBSERVED");
}

}  // namespace perfxplain
