#include "core/pair_enumeration.h"

#include <algorithm>

namespace perfxplain {

void ForEachOrderedPair(
    const ExecutionLog& log, const PairSchema& schema,
    const PairFeatureOptions& options,
    const std::function<bool(std::size_t, std::size_t,
                             const PairFeatureView&)>& fn) {
  const std::size_t n = log.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      PairFeatureView view(&schema, &log.at(i), &log.at(j), &options);
      if (!fn(i, j, view)) return;
    }
  }
}

PairLabel ClassifyPair(const Query& bound_query, const PairFeatureView& view) {
  if (!bound_query.despite.Eval(view)) return PairLabel::kUnrelated;
  if (bound_query.observed.Eval(view)) return PairLabel::kObserved;
  if (bound_query.expected.Eval(view)) return PairLabel::kExpected;
  return PairLabel::kUnrelated;
}

RelatedCounts CountRelatedPairs(const ExecutionLog& log,
                                const PairSchema& schema,
                                const Query& bound_query,
                                const PairFeatureOptions& options) {
  RelatedCounts counts;
  ForEachOrderedPair(log, schema, options,
                     [&](std::size_t, std::size_t,
                         const PairFeatureView& view) {
                       switch (ClassifyPair(bound_query, view)) {
                         case PairLabel::kObserved:
                           ++counts.observed;
                           break;
                         case PairLabel::kExpected:
                           ++counts.expected;
                           break;
                         case PairLabel::kUnrelated:
                           break;
                       }
                       return true;
                     });
  return counts;
}

Result<std::vector<TrainingExample>> BuildTrainingExamples(
    const ExecutionLog& log, const PairSchema& schema,
    const Query& bound_query, std::size_t poi_first, std::size_t poi_second,
    const PairFeatureOptions& pair_options,
    const SamplerOptions& sampler_options, Rng& rng, bool balanced) {
  if (poi_first >= log.size() || poi_second >= log.size() ||
      poi_first == poi_second) {
    return Status::InvalidArgument("pair of interest indexes out of range");
  }
  // Pass 1: label counts for the §4.3 acceptance probabilities.
  const RelatedCounts counts =
      CountRelatedPairs(log, schema, bound_query, pair_options);
  if (counts.total() == 0) {
    return Status::FailedPrecondition(
        "no pairs in the log are related to the query");
  }
  const double m = static_cast<double>(sampler_options.sample_size);
  double p_observed;
  double p_expected;
  if (balanced) {
    p_observed =
        counts.observed == 0
            ? 0.0
            : std::min(1.0, m / (2.0 * static_cast<double>(counts.observed)));
    p_expected =
        counts.expected == 0
            ? 0.0
            : std::min(1.0,
                       m / (2.0 * static_cast<double>(counts.expected)));
  } else {
    const double uniform =
        std::min(1.0, m / static_cast<double>(counts.total()));
    p_observed = uniform;
    p_expected = uniform;
  }

  // Pass 2: sample and materialize. The pair of interest goes first.
  std::vector<TrainingExample> examples;
  {
    PairFeatureView poi_view(&schema, &log.at(poi_first), &log.at(poi_second),
                             &pair_options);
    TrainingExample poi;
    poi.first = poi_first;
    poi.second = poi_second;
    poi.observed = true;
    poi.features = poi_view.Materialize();
    examples.push_back(std::move(poi));
  }
  ForEachOrderedPair(
      log, schema, pair_options,
      [&](std::size_t i, std::size_t j, const PairFeatureView& view) {
        if (i == poi_first && j == poi_second) return true;  // already added
        const PairLabel label = ClassifyPair(bound_query, view);
        if (label == PairLabel::kUnrelated) return true;
        const bool observed = label == PairLabel::kObserved;
        if (!rng.Bernoulli(observed ? p_observed : p_expected)) return true;
        TrainingExample example;
        example.first = i;
        example.second = j;
        example.observed = observed;
        example.features = view.Materialize();
        examples.push_back(std::move(example));
        return true;
      });
  return examples;
}

Result<std::pair<std::size_t, std::size_t>> FindPairOfInterest(
    const ExecutionLog& log, const PairSchema& schema,
    const Query& bound_query, const PairFeatureOptions& options,
    std::size_t skip) {
  std::size_t remaining = skip;
  std::pair<std::size_t, std::size_t> found{0, 0};
  bool ok = false;
  ForEachOrderedPair(
      log, schema, options,
      [&](std::size_t i, std::size_t j, const PairFeatureView& view) {
        if (ClassifyPair(bound_query, view) != PairLabel::kObserved) {
          return true;
        }
        if (remaining > 0) {
          --remaining;
          return true;
        }
        found = {i, j};
        ok = true;
        return false;
      });
  if (!ok) {
    return Status::NotFound(
        "no pair in the log satisfies DESPITE and OBSERVED");
  }
  return found;
}

}  // namespace perfxplain
