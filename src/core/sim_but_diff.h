#ifndef PERFXPLAIN_CORE_SIM_BUT_DIFF_H_
#define PERFXPLAIN_CORE_SIM_BUT_DIFF_H_

#include <cstdint>

#include "common/status.h"
#include "core/explanation.h"
#include "features/pair_schema.h"
#include "log/execution_log.h"
#include "pxql/query.h"

namespace perfxplain {

/// Options of the SimButDiff baseline (Algorithm 2).
struct SimButDiffOptions {
  /// Similarity threshold s: a training pair is "similar" to the pair of
  /// interest when it agrees on at least s * k of the k isSame features
  /// (the paper uses 0.9).
  double similarity_threshold = 0.9;
  PairFeatureOptions pair;
};

/// The SimButDiff baseline (§5.2, Algorithm 2): restrict training examples
/// to the isSame features, keep pairs similar to the pair of interest, and
/// for each feature run a what-if analysis — among similar pairs that
/// *disagree* with the pair of interest on the feature, what fraction
/// performed as expected? The top-w features by that score, asserted at the
/// pair's own values, form the explanation.
class SimButDiff {
 public:
  /// `log` must outlive this object.
  SimButDiff(const ExecutionLog* log, SimButDiffOptions options);

  Result<Explanation> Explain(const Query& query, std::size_t width) const;

 private:
  const ExecutionLog* log_;
  SimButDiffOptions options_;
  PairSchema schema_;
};

}  // namespace perfxplain

#endif  // PERFXPLAIN_CORE_SIM_BUT_DIFF_H_
