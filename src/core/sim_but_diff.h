#ifndef PERFXPLAIN_CORE_SIM_BUT_DIFF_H_
#define PERFXPLAIN_CORE_SIM_BUT_DIFF_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/explanation.h"
#include "features/pair_code_store.h"
#include "features/pair_schema.h"
#include "log/columnar.h"
#include "log/execution_log.h"
#include "pxql/compiled_predicate.h"
#include "pxql/query.h"

namespace perfxplain {

/// Options of the SimButDiff baseline (Algorithm 2).
struct SimButDiffOptions {
  /// Similarity threshold s: a training pair is "similar" to the pair of
  /// interest when it agrees on at least s * k of the k isSame features
  /// (the paper uses 0.9).
  double similarity_threshold = 0.9;
  PairFeatureOptions pair;
  /// Worker threads for the columnar pair enumeration (0 = process
  /// default). Thread count never changes any result: per-stripe tallies
  /// are integer sums merged in row order.
  int threads = 0;
  /// Memory budget of the snapshot-resident PairCodeStore (set through
  /// EngineOptions::sim_but_diff). A full plane costs
  /// PairCodeStore::BytesNeeded(n, k) = n² · ceil(k/32) · 8 ≈ n² · k/4
  /// bytes and is built whole when it fits. A budget between one row
  /// tile (TilePool::TileBytes = n · ceil(k/32) · 8) and a plane runs
  /// the buffer-pool middle path instead: the budget's worth of row-tile
  /// frames under an LRU replacer, hot rows resident and cold rows
  /// streamed. Only a budget under one tile (or a baseline built without
  /// a store) leaves every pair on the streaming fused pack-and-compare.
  /// All three paths are bitwise identical — the budget only moves work,
  /// never results. 0 disables residency outright.
  std::size_t pair_code_budget_bytes = std::size_t{256} << 20;
};

/// The SimButDiff baseline (§5.2, Algorithm 2): restrict training examples
/// to the isSame features, keep pairs similar to the pair of interest, and
/// for each feature run a what-if analysis — among similar pairs that
/// *disagree* with the pair of interest on the feature, what fraction
/// performed as expected? The top-w features by that score, asserted at the
/// pair's own values, form the explanation.
///
/// The pair scan runs on the columnar engine: the query is compiled to
/// flat predicate programs and the agreement test runs on packed pair
/// codes — the k isSame codes of a pair stored 2 bits/feature in uint64
/// words, compared against the pair of interest with XOR + mask +
/// popcount kernels (kernel::ScanPairAgainstPoi) instead of k per-feature
/// branches — so no Value is materialized while enumerating.
class SimButDiff {
 public:
  /// `log` must outlive this object. When `columns` is non-null it must be
  /// the columnar copy of `log` (and outlive this object too); the
  /// baseline then shares it instead of building its own — PerfXplain
  /// passes the Explainer's so all three techniques scan one replica.
  /// When `store` is non-null it must be the PairCodeStore of `columns`
  /// (the Engine passes its snapshot's): Explain then runs on the
  /// snapshot-resident packed codes — first acquisition builds them once,
  /// every later sequential query skips packing entirely — subject to
  /// SimButDiffOptions::pair_code_budget_bytes. A null store keeps the
  /// streaming fused pack-and-compare of PR 3.
  SimButDiff(const ExecutionLog* log, SimButDiffOptions options,
             const ColumnarLog* columns = nullptr,
             const PairCodeStore* store = nullptr);

  /// The columnar replica every scan of this baseline reads.
  const ColumnarLog& columns() const { return *columns_; }

  Result<Explanation> Explain(const Query& query, std::size_t width) const;

  /// Explain starting from a query already bound, validated and resolved
  /// (Engine::Prepare): `compiled` must be the query's programs compiled
  /// against this baseline's columns. Skips the per-call parse/bind/find
  /// work; otherwise identical to Explain. `threads` overrides the
  /// constructor's worker-thread count (0 = process default).
  Result<Explanation> ExplainPrepared(const Query& bound,
                                      const CompiledQuery& compiled,
                                      std::size_t poi_first,
                                      std::size_t poi_second,
                                      std::size_t width, int threads) const;

  /// One query of an ExplainBatch call, prepared by the caller.
  struct PreparedBatchQuery {
    const Query* bound = nullptr;          ///< bound + validated
    const CompiledQuery* compiled = nullptr;  ///< against columns()
    std::size_t poi_first = 0;
    std::size_t poi_second = 0;
    std::size_t width = 3;
  };

  /// Answers every query of the batch in ONE pass over the ordered pairs,
  /// amortizing the per-pair work that Explain repeats per query:
  ///  - queries whose three bound predicates are structurally identical
  ///    form a classification group — each pair is labeled once per group,
  ///    not once per query;
  ///  - a pair's packed isSame codes (kernel::PackedIsSameCodes) are built
  ///    at most once per pair and shared by every query's agreement test.
  /// Each result is bitwise identical to the corresponding per-call
  /// Explain (same tallies, same statuses); thread count is
  /// observation-free as in Explain.
  std::vector<Result<Explanation>> ExplainBatch(
      const std::vector<PreparedBatchQuery>& queries, int threads) const;

  /// The seed implementation (lazy Value views through
  /// ForEachOrderedPair), kept as a compatibility layer: the randomized
  /// equivalence tests and the in-binary bench_micro baseline pin the
  /// columnar path against it. Bitwise-identical explanations.
  Result<Explanation> ExplainLegacy(const Query& query,
                                    std::size_t width) const;

 private:
  /// Binds and validates the query and resolves the pair of interest.
  Result<std::pair<std::size_t, std::size_t>> ResolvePair(Query& bound) const;

  const ExecutionLog* log_;
  SimButDiffOptions options_;
  PairSchema schema_;
  std::unique_ptr<ColumnarLog> owned_columns_;
  const ColumnarLog* columns_;
  const PairCodeStore* store_;  ///< may be null: streaming pack only
};

}  // namespace perfxplain

#endif  // PERFXPLAIN_CORE_SIM_BUT_DIFF_H_
