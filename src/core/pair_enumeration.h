#ifndef PERFXPLAIN_CORE_PAIR_ENUMERATION_H_
#define PERFXPLAIN_CORE_PAIR_ENUMERATION_H_

#include <algorithm>
#include <exception>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/random.h"
#include "common/status.h"
#include "features/pair_features.h"
#include "features/pair_schema.h"
#include "log/columnar.h"
#include "log/execution_log.h"
#include "ml/sampler.h"
#include "pxql/compiled_predicate.h"
#include "pxql/query.h"

namespace perfxplain {

/// Invokes `fn` for every ordered pair (i, j), i != j, of records in `log`
/// with a lazy feature view. Enumeration is row-major and deterministic.
/// `fn` returning false stops the enumeration early.
///
/// Compat layer: this is the seed enumeration the columnar scans are
/// pinned against (see docs/ARCHITECTURE.md for the full boundary); no
/// production path calls it — only equivalence tests, the in-binary
/// bench_micro baselines, and the legacy technique entry points.
///
/// The callable is a template parameter so tight callers inline; the
/// std::function overload below remains for type-erased call sites.
template <typename Fn>
void ForEachOrderedPair(const ExecutionLog& log, const PairSchema& schema,
                        const PairFeatureOptions& options, Fn&& fn) {
  const std::size_t n = log.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      PairFeatureView view(&schema, &log.at(i), &log.at(j), &options);
      if (!fn(i, j, view)) return;
    }
  }
}

void ForEachOrderedPair(
    const ExecutionLog& log, const PairSchema& schema,
    const PairFeatureOptions& options,
    const std::function<bool(std::size_t, std::size_t,
                             const PairFeatureView&)>& fn);

/// Classification of one pair with respect to a query (Definitions 7-9).
enum class PairLabel {
  kUnrelated,  ///< fails des, or satisfies neither obs nor exp
  kObserved,   ///< des && obs
  kExpected,   ///< des && exp
};

/// Labels the pair via lazy evaluation (des first, so unrelated pairs cost
/// only the des atoms).
PairLabel ClassifyPair(const Query& bound_query, const PairFeatureView& view);

/// Labels the pair of rows (i, j) of the query's compiled-against log —
/// the columnar equivalent of ClassifyPair, allocation-free.
PairLabel ClassifyPairCompiled(const CompiledQuery& query, std::size_t i,
                               std::size_t j, double sim_fraction);

/// Controls the row-blocked parallel enumeration of the columnar fast
/// path. Results are bitwise identical for every thread count: per-thread
/// partial results are merged in row order and all sampling randomness is
/// replayed serially.
struct EnumerationOptions {
  /// 0 uses the process-wide default (SetDefaultEnumerationThreads, itself
  /// defaulting to the hardware concurrency).
  int threads = 0;

  /// Max related pairs SampleRelatedPairs may buffer during its counting
  /// pass (~24 bytes each). Under the cap, sampling replays the draws from
  /// the buffer (one scan total); above it, the buffer is discarded and a
  /// second, streaming scan performs the draws with O(accepted) memory.
  /// Both paths produce identical results. 0 forces the streaming path.
  std::size_t sample_buffer_cap = std::size_t{1} << 21;

  /// Selection-vector pruning: derive per-row selection vectors from the
  /// query's despite program (CompiledPredicate::DeriveSelection) and
  /// enumerate only |sel_first| × |sel_second| candidate pairs instead of
  /// n². Pruned pairs all fail des (they are unrelated and touch no
  /// tally), so results are bitwise identical either way; the flag exists
  /// for the equivalence tests and the BM_SelectiveQueryPruning baseline.
  bool prune = true;
};

/// Overrides the process-wide default thread count (0 restores "hardware
/// concurrency"). Thread count is observation-free: it never changes any
/// result, only wall-clock time.
void SetDefaultEnumerationThreads(int threads);

/// The positive thread count `options.threads` resolves to.
int ResolveEnumerationThreads(const EnumerationOptions& options);

/// Number of stripes ForEachRowStripe will actually use: the requested
/// thread count clamped to the row count (and at least 1). Size per-stripe
/// partial-result buffers with this, never with the raw thread count.
inline std::size_t RowStripeCount(std::size_t rows, int threads) {
  return std::min<std::size_t>(
      static_cast<std::size_t>(threads > 0 ? threads : 1),
      std::max<std::size_t>(rows, 1));
}

/// Runs body(stripe_index, row_begin, row_end) over RowStripeCount
/// contiguous row stripes covering [0, rows), on worker threads when more
/// than one stripe is used. Stripes ascend with stripe_index, so per-stripe
/// partial results merged in stripe order reproduce the row-major order.
/// An exception thrown by any stripe is rethrown on the calling thread
/// after all workers join. The calling thread's ExecContext (if any) is
/// re-installed in every worker, so cancellation checkpoints inside `body`
/// see the request's token and deadline across stripe boundaries. Shared by
/// the counting scans here and in metrics.cc.
///
/// Concurrency model (out of scope for the thread-safety analysis, which
/// checks lock-guarded state only): workers write disjoint per-stripe
/// partials and the join below is the sole publication point — no lock, no
/// shared mutable state, so there is nothing to annotate. The bitwise
/// thread-invariance suites and the TSan CI job enforce this invariant;
/// any new shared mutable state added to a stripe body must either be a
/// per-stripe partial merged after the join or hold an annotated px::Mutex.
template <typename Body>
void ForEachRowStripe(std::size_t rows, int threads, Body&& body) {
  const std::size_t t = RowStripeCount(rows, threads);
  if (t <= 1) {
    body(std::size_t{0}, std::size_t{0}, rows);
    return;
  }
  const ExecContext* exec_context = CurrentExecContext();
  std::vector<std::thread> workers;
  workers.reserve(t - 1);
  std::vector<std::exception_ptr> errors(t);
  const std::size_t chunk = (rows + t - 1) / t;
  for (std::size_t b = 1; b < t; ++b) {
    const std::size_t begin = b * chunk;
    const std::size_t end = std::min(rows, begin + chunk);
    if (begin >= end) break;
    workers.emplace_back([&body, &errors, exec_context, b, begin, end] {
      ScopedExecContext scoped(exec_context);
      try {
        body(b, begin, end);
      } catch (...) {
        errors[b] = std::current_exception();
      }
    });
  }
  // Stripe 0 runs on the calling thread, concurrently with the workers, so
  // `threads` means what it says.
  try {
    body(std::size_t{0}, std::size_t{0}, std::min(rows, chunk));
  } catch (...) {
    errors[0] = std::current_exception();
  }
  for (std::thread& worker : workers) worker.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

/// Row-blocked scan over all ordered pairs (i, j), i != j: resizes
/// `partials` to the stripe count and invokes per_pair(partials[stripe],
/// i, j) for every pair of the stripe. The caller merges the partials in
/// index (= row) order. Shared by the counting scans here and in
/// metrics.cc.
template <typename Partial, typename PerPair>
void ScanOrderedPairs(std::size_t rows, const EnumerationOptions& enumeration,
                      std::vector<Partial>& partials, PerPair&& per_pair) {
  const int threads = ResolveEnumerationThreads(enumeration);
  partials.assign(RowStripeCount(rows, threads), Partial{});
  ForEachRowStripe(rows, threads,
                   [&](std::size_t block, std::size_t begin,
                       std::size_t end) {
                     // Accumulate into a stripe-local partial so counters
                     // stay in registers; store once at stripe end.
                     Partial local{};
                     for (std::size_t i = begin; i < end; ++i) {
                       ThrowIfInterrupted();
                       for (std::size_t j = 0; j < rows; ++j) {
                         if (i != j) per_pair(local, i, j);
                       }
                     }
                     partials[block] = std::move(local);
                   });
}

/// Row-blocked scan over the candidate pairs of a PairSelection (which
/// must be constrained): stripes cover contiguous chunks of
/// `selection.first_rows` (ascending, so partials merged in stripe order
/// reproduce the row-major result), the inner loop walks
/// `selection.second_rows`, and the diagonal is skipped. Same contract as
/// ScanOrderedPairs over the selected subset.
template <typename Partial, typename PerPair>
void ScanSelectedPairs(const PairSelection& selection,
                       const EnumerationOptions& enumeration,
                       std::vector<Partial>& partials, PerPair&& per_pair) {
  const int threads = ResolveEnumerationThreads(enumeration);
  const std::vector<std::uint32_t>& first = selection.first_rows;
  const std::vector<std::uint32_t>& second = selection.second_rows;
  partials.assign(RowStripeCount(first.size(), threads), Partial{});
  ForEachRowStripe(first.size(), threads,
                   [&](std::size_t block, std::size_t begin,
                       std::size_t end) {
                     Partial local{};
                     for (std::size_t s = begin; s < end; ++s) {
                       ThrowIfInterrupted();
                       const std::size_t i = first[s];
                       for (std::uint32_t j : second) {
                         if (i != j) per_pair(local, i, j);
                       }
                     }
                     partials[block] = std::move(local);
                   });
}

/// ScanOrderedPairs with selection-vector pruning: when pruning is on and
/// the despite program's first deterministic atom yields a selection
/// (CompiledPredicate::DeriveSelection), only the candidate pairs are
/// enumerated; otherwise all ordered pairs are. Bitwise-identical partial
/// tallies either way — pruned pairs fail des and contribute nothing.
template <typename Partial, typename PerPair>
void ScanDespitePairs(const CompiledPredicate& despite, std::size_t rows,
                      const EnumerationOptions& enumeration,
                      std::vector<Partial>& partials, PerPair&& per_pair) {
  if (enumeration.prune) {
    const PairSelection selection = despite.DeriveSelection(rows);
    if (selection.constrained) {
      ScanSelectedPairs(selection, enumeration, partials,
                        std::forward<PerPair>(per_pair));
      return;
    }
  }
  ScanOrderedPairs(rows, enumeration, partials,
                   std::forward<PerPair>(per_pair));
}

/// Counts of related pairs by label.
struct RelatedCounts {
  std::size_t observed = 0;
  std::size_t expected = 0;
  std::size_t total() const { return observed + expected; }
};

/// One pass over all ordered pairs counting Definition 8/9 labels.
RelatedCounts CountRelatedPairs(const ExecutionLog& log,
                                const PairSchema& schema,
                                const Query& bound_query,
                                const PairFeatureOptions& options);

/// Columnar fast path of CountRelatedPairs: row-blocked and multi-threaded
/// over a prebuilt ColumnarLog and compiled query.
RelatedCounts CountRelatedPairs(const ColumnarLog& columns,
                                const CompiledQuery& query,
                                double sim_fraction,
                                const EnumerationOptions& enumeration = {});

/// All ordered pairs related to the query (Definition 7), in row-major
/// order, labeled observed/expected. Row-blocked parallel scan; per-block
/// results are concatenated in block order, so the output is independent
/// of the thread count.
std::vector<PairRef> CollectRelatedPairs(
    const ColumnarLog& columns, const CompiledQuery& query,
    double sim_fraction, const EnumerationOptions& enumeration = {});

/// The pair-of-interest-independent product of SampleRelatedPairs'
/// counting scan: the Definition 8/9 label counts plus — unless the
/// buffer cap overflowed — every related pair in row-major order. One
/// scan of a query *shape* serves any number of pairs of interest:
/// Engine::ExplainBatch runs it once per group of structurally identical
/// PerfXplain queries and replays the sampling per request.
struct RelatedPairScan {
  RelatedCounts counts;
  /// Row-major related pairs; empty and meaningless when `overflowed`.
  std::vector<PairRef> related;
  /// True when more than EnumerationOptions::sample_buffer_cap pairs were
  /// related: the buffer was discarded and callers must fall back to the
  /// streaming draw scan (plain SampleRelatedPairs).
  bool overflowed = false;
};

/// The counting pass of SampleRelatedPairs, exposed so the scan can be
/// shared across queries of one shape. Selection-pruned like every
/// despite-first scan.
RelatedPairScan ScanRelatedPairs(const ColumnarLog& columns,
                                 const CompiledQuery& query,
                                 double sim_fraction,
                                 const EnumerationOptions& enumeration = {});

/// The serial §4.3 acceptance replay of SampleRelatedPairs over an
/// already-collected scan (which must not be overflowed): computes the
/// balanced acceptance probabilities from the counts and draws one
/// Bernoulli per related pair (except the pair of interest) in row-major
/// order — bit-identical to SampleRelatedPairs over the same log and
/// query for the same Rng. `rows` is the scanned log's row count (pair-of-
/// interest bounds check only).
Result<std::vector<PairRef>> ReplaySampleDraws(
    const RelatedPairScan& scan, std::size_t rows, std::size_t poi_first,
    std::size_t poi_second, const SamplerOptions& sampler_options, Rng& rng,
    bool balanced = true);

/// constructTrainingExamples + sample (lines 1-2 of Algorithm 1) on the
/// columnar fast path: collects related pairs, then serially replays the
/// §4.3 balanced-sampling acceptance draws over them in row-major order
/// (bit-identical to the legacy Value path for the same Rng seed). The
/// pair of interest is always first.
Result<std::vector<PairRef>> SampleRelatedPairs(
    const ColumnarLog& columns, const CompiledQuery& query,
    std::size_t poi_first, std::size_t poi_second, double sim_fraction,
    const SamplerOptions& sampler_options, Rng& rng, bool balanced = true,
    const EnumerationOptions& enumeration = {});

/// constructTrainingExamples + sample (lines 1-2 of Algorithm 1): labels
/// every ordered pair, keeps related ones with the balanced-sampling
/// acceptance probabilities of §4.3, and materializes the kept pairs'
/// feature vectors. The pair of interest (poi_first, poi_second) — which by
/// Definition 1 performs as observed — is always included, as the first
/// example.
/// When `balanced` is false the §4.3 label-balancing acceptance
/// probabilities are replaced by a single uniform probability m/|related|
/// (ablation of the balanced-sampling design decision).
Result<std::vector<TrainingExample>> BuildTrainingExamples(
    const ExecutionLog& log, const PairSchema& schema,
    const Query& bound_query, std::size_t poi_first, std::size_t poi_second,
    const PairFeatureOptions& pair_options,
    const SamplerOptions& sampler_options, Rng& rng, bool balanced = true);

/// Finds a pair of interest for the query: an ordered pair satisfying
/// des AND obs (and therefore, by Definition 1, not exp). `skip` ordered
/// pairs matching the condition are passed over first, so callers can pick
/// different exemplars. Returns (first, second) record indexes.
Result<std::pair<std::size_t, std::size_t>> FindPairOfInterest(
    const ExecutionLog& log, const PairSchema& schema,
    const Query& bound_query, const PairFeatureOptions& options,
    std::size_t skip = 0);

/// Columnar fast path of FindPairOfInterest. The scan is serial (the
/// expected exit is early) but each pair test runs the compiled program.
Result<std::pair<std::size_t, std::size_t>> FindPairOfInterest(
    const ColumnarLog& columns, const CompiledQuery& query,
    double sim_fraction, std::size_t skip = 0);

}  // namespace perfxplain

#endif  // PERFXPLAIN_CORE_PAIR_ENUMERATION_H_
