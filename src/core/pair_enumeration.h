#ifndef PERFXPLAIN_CORE_PAIR_ENUMERATION_H_
#define PERFXPLAIN_CORE_PAIR_ENUMERATION_H_

#include <functional>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "features/pair_features.h"
#include "features/pair_schema.h"
#include "log/execution_log.h"
#include "ml/sampler.h"
#include "pxql/query.h"

namespace perfxplain {

/// Invokes `fn` for every ordered pair (i, j), i != j, of records in `log`
/// with a lazy feature view. Enumeration is row-major and deterministic.
/// `fn` returning false stops the enumeration early.
void ForEachOrderedPair(
    const ExecutionLog& log, const PairSchema& schema,
    const PairFeatureOptions& options,
    const std::function<bool(std::size_t, std::size_t,
                             const PairFeatureView&)>& fn);

/// Classification of one pair with respect to a query (Definitions 7-9).
enum class PairLabel {
  kUnrelated,  ///< fails des, or satisfies neither obs nor exp
  kObserved,   ///< des && obs
  kExpected,   ///< des && exp
};

/// Labels the pair via lazy evaluation (des first, so unrelated pairs cost
/// only the des atoms).
PairLabel ClassifyPair(const Query& bound_query, const PairFeatureView& view);

/// Counts of related pairs by label.
struct RelatedCounts {
  std::size_t observed = 0;
  std::size_t expected = 0;
  std::size_t total() const { return observed + expected; }
};

/// One pass over all ordered pairs counting Definition 8/9 labels.
RelatedCounts CountRelatedPairs(const ExecutionLog& log,
                                const PairSchema& schema,
                                const Query& bound_query,
                                const PairFeatureOptions& options);

/// constructTrainingExamples + sample (lines 1-2 of Algorithm 1): labels
/// every ordered pair, keeps related ones with the balanced-sampling
/// acceptance probabilities of §4.3, and materializes the kept pairs'
/// feature vectors. The pair of interest (poi_first, poi_second) — which by
/// Definition 1 performs as observed — is always included, as the first
/// example.
/// When `balanced` is false the §4.3 label-balancing acceptance
/// probabilities are replaced by a single uniform probability m/|related|
/// (ablation of the balanced-sampling design decision).
Result<std::vector<TrainingExample>> BuildTrainingExamples(
    const ExecutionLog& log, const PairSchema& schema,
    const Query& bound_query, std::size_t poi_first, std::size_t poi_second,
    const PairFeatureOptions& pair_options,
    const SamplerOptions& sampler_options, Rng& rng, bool balanced = true);

/// Finds a pair of interest for the query: an ordered pair satisfying
/// des AND obs (and therefore, by Definition 1, not exp). `skip` ordered
/// pairs matching the condition are passed over first, so callers can pick
/// different exemplars. Returns (first, second) record indexes.
Result<std::pair<std::size_t, std::size_t>> FindPairOfInterest(
    const ExecutionLog& log, const PairSchema& schema,
    const Query& bound_query, const PairFeatureOptions& options,
    std::size_t skip = 0);

}  // namespace perfxplain

#endif  // PERFXPLAIN_CORE_PAIR_ENUMERATION_H_
