#ifndef PERFXPLAIN_CORE_RESULT_CACHE_H_
#define PERFXPLAIN_CORE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string>

#include "common/thread_annotations.h"
#include "core/explanation.h"
#include "core/metrics.h"

namespace perfxplain {

/// A keyed LRU cache of finished explanation results, so repeated queries
/// from many users become one map lookup instead of an O(n²) scan — the
/// serving-layer complement to the PairCodeStore's tile pool.
///
/// Keys are opaque strings the Engine composes from everything a result
/// depends on: the snapshot id, the engine's result-affecting options
/// fingerprint, the canonicalized bound query (its PXQL text plus the
/// resolved pair-of-interest rows), the technique, the effective width
/// and seed, and the auto-despite/evaluate switches. Thread count and
/// memory budgets are deliberately absent — they are observation-free by
/// construction (the bitwise invariance suites pin that), so a result
/// computed at any thread count or budget serves every other.
///
/// Only complete, successful responses are ever inserted: a request that
/// fails, is cancelled or exceeds its deadline mid-scan inserts nothing,
/// so a hit is always a full answer. Eviction is LRU under a byte budget
/// (estimated entry footprint; an entry alone exceeding the budget is
/// simply not cached). Snapshot rotation invalidates wholesale through
/// InvalidateSnapshot — keys are prefixed with the decimal snapshot id,
/// so one ordered-map range erase drops every entry of a retired
/// snapshot while other snapshots' entries (engines sharing one cache
/// across a rotation) stay hot. Correctness never depends on
/// invalidation: a new snapshot's keys differ by construction;
/// invalidation only reclaims the bytes.
///
/// Thread safety: all methods are safe from any number of threads; one
/// mutex guards the map, the LRU list and the counters.
class ResultCache {
 public:
  /// A cached result: the explanation plus the metrics of an
  /// evaluate=true request (evaluate-ness is part of the key, so hits
  /// always carry exactly what the request asked for).
  struct Value {
    Explanation explanation;
    std::optional<ExplanationMetrics> metrics;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t bytes = 0;
  };

  /// `budget_bytes` caps the estimated footprint of all entries.
  explicit ResultCache(std::size_t budget_bytes);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// The key prefix every key of `snapshot_id` must start with (Engine
  /// uses it to compose keys; InvalidateSnapshot erases by it).
  static std::string SnapshotPrefix(std::uint64_t snapshot_id);

  /// Looks `key` up, refreshing its LRU position on a hit.
  std::optional<Value> Get(const std::string& key) PX_EXCLUDES(mutex_);

  /// Inserts (or refreshes) `key`, then evicts LRU entries until the
  /// budget holds. An entry whose own footprint exceeds the budget is
  /// dropped instead of flushing the whole cache.
  void Put(const std::string& key, Value value) PX_EXCLUDES(mutex_);

  /// Erases every entry of `snapshot_id` (the wholesale rotation hook).
  /// Returns how many entries were dropped.
  std::size_t InvalidateSnapshot(std::uint64_t snapshot_id)
      PX_EXCLUDES(mutex_);

  std::size_t budget_bytes() const { return budget_bytes_; }
  Stats stats() const PX_EXCLUDES(mutex_);

 private:
  struct Entry {
    Value value;
    std::size_t bytes = 0;
    /// Position in lru_ (most-recent at the back).
    std::list<std::string>::iterator lru_pos;
  };

  static std::size_t EstimateBytes(const std::string& key,
                                   const Value& value);

  void EraseEntry(std::map<std::string, Entry>::iterator it)
      PX_REQUIRES(mutex_);

  const std::size_t budget_bytes_;
  mutable Mutex mutex_;
  /// Ordered by key, so one snapshot's entries form a contiguous
  /// prefix range (and iteration order is deterministic — see
  /// pxlint:determinism on unordered containers).
  std::map<std::string, Entry> entries_ PX_GUARDED_BY(mutex_);
  std::list<std::string> lru_ PX_GUARDED_BY(mutex_);  ///< cold front, hot back
  std::size_t bytes_ PX_GUARDED_BY(mutex_) = 0;
  std::uint64_t hits_ PX_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ PX_GUARDED_BY(mutex_) = 0;
  std::uint64_t insertions_ PX_GUARDED_BY(mutex_) = 0;
  std::uint64_t evictions_ PX_GUARDED_BY(mutex_) = 0;
};

}  // namespace perfxplain

#endif  // PERFXPLAIN_CORE_RESULT_CACHE_H_
