#ifndef PERFXPLAIN_CORE_METRICS_H_
#define PERFXPLAIN_CORE_METRICS_H_

#include "core/explanation.h"
#include "core/pair_enumeration.h"
#include "features/pair_features.h"
#include "log/execution_log.h"
#include "pxql/query.h"

namespace perfxplain {

/// Quality of one explanation against one log (Definitions 4-6), together
/// with the raw pair counts behind the conditional probabilities.
///
/// Following §4.2 of the paper, all three conditional probabilities are
/// measured over the pairs *related* to the query — those satisfying
/// des AND (obs OR exp), Definition 7 — so pairs exhibiting some third
/// behavior do not enter the population:
///   Rel(E) = P(exp | des' AND des AND (obs OR exp))
///   Pr(E)  = P(obs | bec AND des' AND des AND (obs OR exp))
///   Gen(E) = P(bec | des' AND des AND (obs OR exp))
struct ExplanationMetrics {
  double relevance = 0.0;
  double precision = 0.0;
  double generality = 0.0;

  std::size_t pairs_despite = 0;       ///< related pairs satisfying des'
  std::size_t pairs_despite_exp = 0;   ///< ... and exp
  std::size_t pairs_because = 0;       ///< related pairs with des' AND bec
  std::size_t pairs_because_obs = 0;   ///< ... and obs
};

/// Measures relevance, precision and generality of `explanation` for
/// `query` over every ordered pair in `log`. Predicates must already be
/// bound to `schema`. Probabilities conditioned on an empty set are 0.
ExplanationMetrics EvaluateExplanation(const ExecutionLog& log,
                                       const PairSchema& schema,
                                       const Query& bound_query,
                                       const Explanation& explanation,
                                       const PairFeatureOptions& options);

/// Relevance of a despite clause alone: P(exp | despite_ext AND des).
/// Used by the §6.4 experiment (Table 3 / Figure 4a).
double EvaluateDespiteRelevance(const ExecutionLog& log,
                                const PairSchema& schema,
                                const Query& bound_query,
                                const Predicate& despite_ext,
                                const PairFeatureOptions& options);

/// True when the explanation is applicable to the pair (Definition 3):
/// both clauses hold for (first, second). The records may be ad-hoc (from
/// different logs, or from none); evaluation compiles the clauses against a
/// two-row columnar log of just this pair, so no lazy PairFeatureView is
/// constructed — equivalence with the lazy path (missing values, NaN
/// included) is pinned by tests/core/metrics_test.cc.
bool IsApplicable(const Explanation& explanation, const PairSchema& schema,
                  const ExecutionRecord& first, const ExecutionRecord& second,
                  const PairFeatureOptions& options);

}  // namespace perfxplain

#endif  // PERFXPLAIN_CORE_METRICS_H_
