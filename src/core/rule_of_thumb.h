#ifndef PERFXPLAIN_CORE_RULE_OF_THUMB_H_
#define PERFXPLAIN_CORE_RULE_OF_THUMB_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/explanation.h"
#include "features/pair_schema.h"
#include "log/execution_log.h"
#include "ml/relief.h"
#include "pxql/query.h"

namespace perfxplain {

/// Options of the RuleOfThumb baseline.
struct RuleOfThumbOptions {
  ReliefOptions relief;
  PairFeatureOptions pair;
  std::uint64_t seed = 29;
};

/// The RuleOfThumb baseline (§5.1): a one-time RReliefF pass ranks raw
/// features by their impact on duration in general; a query is then
/// answered with the top-w important features on which the pair of
/// interest *disagrees*, as `f_isSame = F` atoms. The technique ignores
/// the PXQL query entirely (beyond the pair of interest), which is exactly
/// the weakness the evaluation exposes.
class RuleOfThumb {
 public:
  /// Ranks features once over `log` (which must outlive this object).
  RuleOfThumb(const ExecutionLog* log, RuleOfThumbOptions options);

  /// Feature ranking (raw-schema indexes, most important first).
  const std::vector<std::size_t>& ranking() const { return ranking_; }

  /// Builds the width-w explanation for the query's pair of interest.
  Result<Explanation> Explain(const Query& query, std::size_t width) const;

 private:
  const ExecutionLog* log_;
  RuleOfThumbOptions options_;
  PairSchema schema_;
  std::vector<std::size_t> ranking_;
};

}  // namespace perfxplain

#endif  // PERFXPLAIN_CORE_RULE_OF_THUMB_H_
