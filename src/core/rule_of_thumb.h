#ifndef PERFXPLAIN_CORE_RULE_OF_THUMB_H_
#define PERFXPLAIN_CORE_RULE_OF_THUMB_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/explanation.h"
#include "features/pair_schema.h"
#include "log/columnar.h"
#include "log/execution_log.h"
#include "ml/relief.h"
#include "pxql/query.h"

namespace perfxplain {

/// Options of the RuleOfThumb baseline.
struct RuleOfThumbOptions {
  ReliefOptions relief;
  PairFeatureOptions pair;
  std::uint64_t seed = 29;
};

/// The RuleOfThumb baseline (§5.1): a one-time RReliefF pass ranks raw
/// features by their impact on duration in general; a query is then
/// answered with the top-w important features on which the pair of
/// interest *disagrees*, as `f_isSame = F` atoms. The technique ignores
/// the PXQL query entirely (beyond the pair of interest), which is exactly
/// the weakness the evaluation exposes.
///
/// Both the RReliefF ranking pass and the per-query disagreement test run
/// on the columnar engine (double arrays and interner codes instead of
/// Values), bitwise identical to the legacy path.
class RuleOfThumb {
 public:
  /// Ranks features once over `log` (which must outlive this object). When
  /// `columns` is non-null it must be the columnar copy of `log` (and
  /// outlive this object too); the baseline then shares it instead of
  /// building its own — PerfXplain passes the Explainer's so all three
  /// techniques scan one replica.
  RuleOfThumb(const ExecutionLog* log, RuleOfThumbOptions options,
              const ColumnarLog* columns = nullptr);

  /// Feature ranking (raw-schema indexes, most important first).
  const std::vector<std::size_t>& ranking() const { return ranking_; }

  /// Builds the width-w explanation for the query's pair of interest.
  Result<Explanation> Explain(const Query& query, std::size_t width) const;

  /// Explain starting from a query already bound with its pair of interest
  /// resolved (Engine::Prepare) — skips the per-call bind/find work. The
  /// per-query part is O(k); thread-safe over the immutable ranking.
  Result<Explanation> ExplainPrepared(const Query& bound,
                                      std::size_t poi_first,
                                      std::size_t poi_second,
                                      std::size_t width) const;

  /// The seed implementation (Value-path disagreement test), kept as a
  /// compatibility layer for the equivalence tests and the in-binary
  /// bench_micro baseline. Bitwise-identical explanations.
  Result<Explanation> ExplainLegacy(const Query& query,
                                    std::size_t width) const;

 private:
  /// Binds the query and resolves the pair of interest.
  Result<std::pair<std::size_t, std::size_t>> ResolvePair(Query& bound) const;

  const ExecutionLog* log_;
  RuleOfThumbOptions options_;
  PairSchema schema_;
  std::unique_ptr<ColumnarLog> owned_columns_;
  const ColumnarLog* columns_;
  std::vector<std::size_t> ranking_;
};

}  // namespace perfxplain

#endif  // PERFXPLAIN_CORE_RULE_OF_THUMB_H_
