#ifndef PERFXPLAIN_CORE_EXPLANATION_H_
#define PERFXPLAIN_CORE_EXPLANATION_H_

#include <string>
#include <vector>

#include "pxql/ast.h"

namespace perfxplain {

/// Diagnostics recorded for each atom as it was greedily appended to a
/// clause: the information gain that selected it and the clause's precision
/// (or relevance, for despite clauses) and generality right after adding it.
/// Atoms appear in selection order, so "the important predicates appear
/// first" (§3.3).
struct ExplanationAtom {
  Atom atom;
  double info_gain = 0.0;
  double metric_after = 0.0;      ///< precision (bec) / relevance (des')
  double generality_after = 0.0;
  double score = 0.0;             ///< blended normalized score (line 13)
};

/// A candidate explanation (Definition 2): a pair of predicates
/// (des', bec). `despite` holds only the machine-generated extension; the
/// user's original despite clause lives in the query.
struct Explanation {
  Predicate despite;
  Predicate because;

  /// Per-atom selection diagnostics, in clause order.
  std::vector<ExplanationAtom> despite_trace;
  std::vector<ExplanationAtom> because_trace;

  /// "DESPITE <des'>\nBECAUSE <bec>" (DESPITE omitted when empty).
  std::string ToString() const;
};

}  // namespace perfxplain

#endif  // PERFXPLAIN_CORE_EXPLANATION_H_
