#include "core/sim_but_diff.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/cancel.h"
#include "core/pair_enumeration.h"
#include "features/pair_feature_kernel.h"
#include "pxql/compiled_predicate.h"

namespace perfxplain {

namespace {

/// ceil(s * k) agreeing features make a pair "similar", with the small-k
/// relaxation: unless the caller asked for exact agreement (s = 1), at
/// least one disagreement is always permitted so the what-if analysis has
/// a feature to run on.
std::size_t AgreeThreshold(double similarity_threshold, std::size_t k) {
  std::size_t agree_threshold = static_cast<std::size_t>(
      std::ceil(similarity_threshold * static_cast<double>(k)));
  if (similarity_threshold < 1.0 && agree_threshold >= k && k > 0) {
    agree_threshold = k - 1;
  }
  return agree_threshold;
}

/// Lines 12-17 of Algorithm 2, shared by the columnar and legacy paths:
/// rank features by the what-if score o/d and conjoin the top-w at the
/// pair's own isSame values. Identical tallies produce identical
/// explanations, bit for bit.
Result<Explanation> ExplanationFromTallies(
    const PairSchema& schema, const std::vector<Value>& poi_is_same,
    const std::vector<bool>& excluded,
    const std::vector<std::size_t>& disagree,
    const std::vector<std::size_t>& disagree_expected,
    std::size_t similar_pairs, double similarity_threshold,
    std::size_t width) {
  if (similar_pairs == 0) {
    return Status::FailedPrecondition(
        "no training pairs are similar to the pair of interest at "
        "threshold " +
        std::to_string(similarity_threshold));
  }

  const std::size_t k = schema.raw_size();
  struct Scored {
    std::size_t feature;
    double score;
    std::size_t support;
  };
  std::vector<Scored> scored;
  scored.reserve(k);
  for (std::size_t f = 0; f < k; ++f) {
    if (excluded[f] || disagree[f] == 0) continue;
    if (poi_is_same[f].is_missing()) continue;  // atom would be inapplicable
    scored.push_back({f, static_cast<double>(disagree_expected[f]) /
                             static_cast<double>(disagree[f]),
                      disagree[f]});
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.support > b.support;
                   });

  Explanation explanation;
  for (const Scored& s : scored) {
    if (explanation.because.width() >= width) break;
    ExplanationAtom atom;
    atom.atom =
        Atom::Bound(schema, s.feature, CompareOp::kEq, poi_is_same[s.feature]);
    atom.score = s.score;
    explanation.because.Append(atom.atom);
    explanation.because_trace.push_back(std::move(atom));
  }
  if (explanation.because.is_true()) {
    return Status::FailedPrecondition(
        "SimButDiff found no scoring features for this query");
  }
  return explanation;
}

}  // namespace

SimButDiff::SimButDiff(const ExecutionLog* log, SimButDiffOptions options,
                       const ColumnarLog* columns, const PairCodeStore* store)
    : log_(log), options_(options), schema_(log->schema()), store_(store) {
  PX_CHECK(log != nullptr);
  if (columns == nullptr) {
    owned_columns_ = std::make_unique<ColumnarLog>(*log);
    columns_ = owned_columns_.get();
    PX_CHECK(store == nullptr);  // a store always belongs to its columns
  } else {
    columns_ = columns;
  }
}

Result<std::pair<std::size_t, std::size_t>> SimButDiff::ResolvePair(
    Query& bound) const {
  PX_RETURN_IF_ERROR(bound.Bind(schema_));
  PX_RETURN_IF_ERROR(bound.Validate());
  auto first = log_->Find(bound.first_id);
  if (!first.ok()) return first.status();
  auto second = log_->Find(bound.second_id);
  if (!second.ok()) return second.status();
  return std::make_pair(first.value(), second.value());
}

Result<Explanation> SimButDiff::Explain(const Query& query,
                                        std::size_t width) const {
  Query bound = query;
  auto poi = ResolvePair(bound);
  if (!poi.ok()) return poi.status();
  const CompiledQuery compiled =
      CompiledQuery::Compile(bound, schema_, *columns_);
  return ExplainPrepared(bound, compiled, poi->first, poi->second, width,
                         options_.threads);
}

Result<Explanation> SimButDiff::ExplainPrepared(const Query& bound,
                                                const CompiledQuery& compiled,
                                                std::size_t poi_first,
                                                std::size_t poi_second,
                                                std::size_t width,
                                                int threads) const {
  const ColumnarLog& columns = *columns_;
  const double sim = options_.pair.sim_fraction;
  const std::size_t k = schema_.raw_size();

  // isSame features occupy pair indexes [0, k); the pair of interest's
  // values are packed 2-bit kernel codes (field equality <=> Value
  // equality), so each training pair compares against the poi with
  // XOR + mask + popcount word kernels instead of k branches.
  const kernel::RawColumnTable table(columns);
  const kernel::PackedIsSameCodes poi_codes =
      kernel::PackIsSameCodes(table, poi_first, poi_second, sim);

  // Features the obs/exp clauses mention must not appear in explanations.
  const std::vector<bool> excluded = OutcomeRawFeatureMask(bound, schema_);

  // Lines 4-11 of Algorithm 2 as one row-blocked columnar scan: for every
  // related training pair similar to the pair of interest (>= s*k agreeing
  // isSame codes), tally per-feature disagreement counts and how many of
  // the disagreeing pairs performed as expected. Tallies are integer sums,
  // so per-stripe partials merge to the same totals for any thread count.
  const std::size_t agree_threshold =
      AgreeThreshold(options_.similarity_threshold, k);
  // A threshold above k (similarity_threshold > 1) is unsatisfiable: the
  // legacy scan rejects every pair, so skip the scan rather than let
  // k - agree_threshold wrap.
  const bool satisfiable = agree_threshold <= k;
  const std::size_t max_disagree = satisfiable ? k - agree_threshold : 0;
  struct Tally {
    std::vector<std::size_t> disagree;
    std::vector<std::size_t> disagree_expected;
    std::size_t similar_pairs = 0;
    std::vector<std::uint64_t> diff_masks;   // per-pair scratch (words)
    std::vector<std::size_t> diff_features;  // per-pair scratch
  };
  std::vector<Tally> partial;
  if (satisfiable && !compiled.despite.always_false()) {
    const auto ensure_scratch = [&](Tally& local) {
      if (local.disagree.empty()) {
        local.disagree.assign(k, 0);
        local.disagree_expected.assign(k, 0);
        local.diff_masks.assign(poi_codes.word_count(), 0);
        local.diff_features.reserve(k);
      }
    };
    const auto tally_pair = [&](Tally& local, PairLabel label) {
      ++local.similar_pairs;
      local.diff_features.clear();
      kernel::AppendMaskedFeatures(local.diff_masks.data(),
                                   poi_codes.word_count(),
                                   local.diff_features);
      const bool expected = label == PairLabel::kExpected;
      for (std::size_t f : local.diff_features) {
        ++local.disagree[f];
        if (expected) ++local.disagree_expected[f];
      }
    };
    // The snapshot-resident fast path: with the PairCodeStore warm (built
    // once per snapshot, inside the budget), a sequential query packs
    // nothing. Each worker walks its rows' contiguous store tiles with a
    // branchless similarity pre-filter — pure XOR + mask + popcount over
    // resident words, one candidate-append per pair — and only the
    // candidates similar to the pair of interest pay a classification.
    // Reordering the similarity test before the classification never
    // changes the tallied set: a pair is tallied iff it is related AND
    // similar, whichever test runs first; and integer tallies merged in
    // stripe order keep every thread count bitwise identical.
    const int resolved =
        ResolveEnumerationThreads(EnumerationOptions{threads});
    const PairCodeStore::Resident* resident =
        store_ != nullptr
            ? store_->Acquire(sim, options_.pair_code_budget_bytes,
                              resolved)
            : nullptr;
    // Fractional budgets (one tile to just under a plane) take the
    // buffer-pool middle path: hot row tiles pinned from the store's
    // TilePool, misses built into a victim frame, and a row whose frame
    // cannot be claimed packed into private scratch — every source yields
    // the same words, so budget and eviction order are unobservable.
    TilePool* pool =
        resident == nullptr && store_ != nullptr
            ? store_->AcquireTilePool(sim, options_.pair_code_budget_bytes)
            : nullptr;
    if (resident != nullptr || pool != nullptr) {
      const std::size_t n = columns.rows();
      const std::size_t words = poi_codes.word_count();
      const PairSelection selection = compiled.despite.DeriveSelection(n);
      const std::vector<std::uint32_t>* first_rows =
          selection.constrained ? &selection.first_rows : nullptr;
      const std::vector<std::uint32_t>* second_rows =
          selection.constrained ? &selection.second_rows : nullptr;
      const std::size_t stripe_domain = first_rows ? first_rows->size() : n;
      partial.assign(RowStripeCount(stripe_domain, resolved), Tally{});
      ForEachRowStripe(
          stripe_domain, resolved,
          [&](std::size_t block, std::size_t begin, std::size_t end) {
            Tally local;
            ensure_scratch(local);
            std::vector<std::uint32_t> candidates(n);
            // Hoisted poi words: the filter loop reads only registers,
            // the tile, and (with pruning) the selection vector.
            const std::uint64_t poi_word0 =
                words > 0 ? poi_codes.word(0) : 0;
            for (std::size_t s = begin; s < end; ++s) {
              ThrowIfInterrupted();
              const std::size_t i = first_rows ? (*first_rows)[s] : s;
              TilePool::TileRef ref;  // pin held through the row's scan
              const std::uint64_t* tile = nullptr;
              if (resident != nullptr) {
                tile = resident->pair_words(i, 0);
              } else {
                // First touches admit into free frames only: once the
                // pool is full the hottest rows stay pinned behind the
                // scan-resistant replacer and a sweep wider than the
                // budget cannot churn them out.
                ref = pool->Fetch(i, TilePool::Admission::kFreeOnly);
                if (ref.valid()) tile = ref.words();
              }
              if (tile == nullptr) {
                // Cold row: stream it through the budget-zero fused
                // classify-first pack-and-compare — cheaper than a full
                // tile build (early exit, unrelated pairs never packed)
                // and bitwise identical in what it tallies.
                const std::size_t inner =
                    second_rows ? second_rows->size() : n;
                for (std::size_t s2 = 0; s2 < inner; ++s2) {
                  const std::size_t j =
                      second_rows ? (*second_rows)[s2] : s2;
                  if (j == i) continue;
                  if (i == poi_first && j == poi_second) continue;
                  const PairLabel label =
                      ClassifyPairCompiled(compiled, i, j, sim);
                  if (label == PairLabel::kUnrelated) continue;
                  const std::size_t disagreed = kernel::ScanPairAgainstPoi(
                      table, i, j, sim, poi_codes, max_disagree,
                      local.diff_masks.data());
                  if (disagreed == kernel::kPackedRejected) continue;
                  tally_pair(local, label);
                }
                continue;
              }
              std::size_t count = 0;
              if (words == 1 && second_rows == nullptr) {
                // The common k <= 32 shape: one word per pair, the whole
                // row tile scanned linearly with a branchless append.
                for (std::size_t j = 0; j < n; ++j) {
                  const std::uint64_t mask =
                      kernel::PackedDisagreeMask(tile[j], poi_word0);
                  candidates[count] = static_cast<std::uint32_t>(j);
                  count += static_cast<std::size_t>(
                      static_cast<std::size_t>(kernel::PopCount(mask)) <=
                      max_disagree);
                }
              } else {
                const std::size_t inner =
                    second_rows ? second_rows->size() : n;
                for (std::size_t s2 = 0; s2 < inner; ++s2) {
                  const std::size_t j =
                      second_rows ? (*second_rows)[s2] : s2;
                  const std::uint64_t* pair = tile + j * words;
                  std::size_t disagree = 0;
                  for (std::size_t w = 0; w < words; ++w) {
                    disagree += static_cast<std::size_t>(
                        kernel::PopCount(kernel::PackedDisagreeMask(
                            pair[w], poi_codes.word(w))));
                  }
                  candidates[count] = static_cast<std::uint32_t>(j);
                  count += static_cast<std::size_t>(disagree <=
                                                    max_disagree);
                }
              }
              for (std::size_t c = 0; c < count; ++c) {
                const std::size_t j = candidates[c];
                if (j == i) continue;
                if (i == poi_first && j == poi_second) continue;
                const PairLabel label =
                    ClassifyPairCompiled(compiled, i, j, sim);
                if (label == PairLabel::kUnrelated) continue;
                const std::uint64_t* pair = tile + j * words;
                for (std::size_t w = 0; w < words; ++w) {
                  local.diff_masks[w] = kernel::PackedDisagreeMask(
                      pair[w], poi_codes.word(w));
                }
                tally_pair(local, label);
              }
            }
            partial[block] = std::move(local);
          });
    } else {
      // Streaming fallback (no store, or a budget under one row tile —
      // the zero-budget degenerate case): the fused pack-and-compare of
      // PR 3, classification first so unrelated pairs never pack.
      ScanDespitePairs(
          compiled.despite, columns.rows(), EnumerationOptions{threads},
          partial, [&](Tally& local, std::size_t i, std::size_t j) {
            ensure_scratch(local);
            if (i == poi_first && j == poi_second) return;
            const PairLabel label =
                ClassifyPairCompiled(compiled, i, j, sim);
            if (label == PairLabel::kUnrelated) return;
            // Pack the pair's isSame codes a word at a time and
            // XOR-popcount against the poi; pairs that cannot reach the
            // similarity threshold are abandoned mid-scan. Accept/reject
            // and the resulting tallies are identical to the
            // feature-at-a-time scan.
            const std::size_t disagreed = kernel::ScanPairAgainstPoi(
                table, i, j, sim, poi_codes, max_disagree,
                local.diff_masks.data());
            if (disagreed == kernel::kPackedRejected) return;
            tally_pair(local, label);
          });
    }
  }
  std::vector<std::size_t> disagree(k, 0);
  std::vector<std::size_t> disagree_expected(k, 0);
  std::size_t similar_pairs = 0;
  for (const Tally& local : partial) {
    if (local.disagree.empty()) continue;  // stripe saw no related pair
    similar_pairs += local.similar_pairs;
    for (std::size_t f = 0; f < k; ++f) {
      disagree[f] += local.disagree[f];
      disagree_expected[f] += local.disagree_expected[f];
    }
  }

  std::vector<Value> poi_is_same(k);
  for (std::size_t f = 0; f < k; ++f) {
    poi_is_same[f] = DecodeIsSame(poi_codes.CodeAt(f));
  }
  return ExplanationFromTallies(schema_, poi_is_same, excluded, disagree,
                                disagree_expected, similar_pairs,
                                options_.similarity_threshold, width);
}

std::vector<Result<Explanation>> SimButDiff::ExplainBatch(
    const std::vector<PreparedBatchQuery>& queries, int threads) const {
  const std::size_t n = queries.size();
  std::vector<Result<Explanation>> results;
  results.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    results.push_back(Status::Internal("batch query not answered"));
  }
  if (n == 0) return results;

  const ColumnarLog& columns = *columns_;
  const kernel::RawColumnTable table(columns);
  const double sim = options_.pair.sim_fraction;
  const std::size_t k = schema_.raw_size();
  const std::size_t agree_threshold =
      AgreeThreshold(options_.similarity_threshold, k);
  const bool satisfiable = agree_threshold <= k;
  const std::size_t max_disagree = satisfiable ? k - agree_threshold : 0;
  const std::size_t words =
      (k + kernel::kPackedFeaturesPerWord - 1) / kernel::kPackedFeaturesPerWord;

  // Queries whose three bound predicates are structurally identical label
  // every pair identically (equal predicates lower to equal programs), so
  // each pair is classified once per group.
  struct Group {
    std::size_t representative;  ///< index into `queries`
    bool active = false;  ///< at least one member participates in the scan
  };
  struct Request {
    std::size_t group = 0;
    std::size_t poi_first = 0;
    std::size_t poi_second = 0;
    kernel::PackedIsSameCodes poi_codes;
    bool active = false;
  };
  std::vector<Group> groups;
  std::vector<Request> requests(n);
  bool any_active = false;
  for (std::size_t r = 0; r < n; ++r) {
    const PreparedBatchQuery& query = queries[r];
    Request& request = requests[r];
    std::size_t g = 0;
    for (; g < groups.size(); ++g) {
      const Query& seen = *queries[groups[g].representative].bound;
      if (seen.despite == query.bound->despite &&
          seen.observed == query.bound->observed &&
          seen.expected == query.bound->expected) {
        break;
      }
    }
    if (g == groups.size()) groups.push_back(Group{r});
    request.group = g;
    request.poi_first = query.poi_first;
    request.poi_second = query.poi_second;
    request.poi_codes =
        kernel::PackIsSameCodes(table, query.poi_first, query.poi_second, sim);
    request.active = satisfiable && !query.compiled->despite.always_false();
    if (request.active) {
      groups[g].active = true;
      any_active = true;
    }
  }

  // The single pass over all ordered pairs. Per pair: one classification
  // per active group, one lazy packing of the pair's isSame codes, then a
  // word-level XOR+mask+popcount agreement test per related request.
  // Tallies are integer sums merged in stripe order, so any thread count
  // reproduces the serial totals.
  struct RequestTally {
    std::vector<std::size_t> disagree;
    std::vector<std::size_t> disagree_expected;
    std::size_t similar_pairs = 0;
  };
  struct Tally {
    std::vector<RequestTally> per_request;
    kernel::PackedIsSameCodes pair_codes;    // per-pair scratch
    std::vector<PairLabel> labels;           // per-group scratch
    std::vector<std::uint64_t> diff_masks;   // per-request scratch (words)
    std::vector<std::size_t> diff_features;  // per-request scratch
    /// Fractional-budget path: the stripe's current pinned row tile
    /// (shared_ptr only because the enumeration's partial vector requires
    /// copyable tallies; each live Tally still owns one pin).
    std::shared_ptr<TilePool::TileRef> tile_ref;
    std::size_t tile_row = 0;
    bool has_tile_row = false;
  };
  std::vector<Tally> partial;
  if (any_active) {
    // The batch path reuses the resident store too: when warm, no pair
    // is ever packed — the shared scan reads each pair's words straight
    // from the snapshot. Acquired only when the scan will actually run,
    // so a batch of unsatisfiable queries never pays the build.
    const PairCodeStore::Resident* resident =
        store_ != nullptr
            ? store_->Acquire(
                  sim, options_.pair_code_budget_bytes,
                  ResolveEnumerationThreads(EnumerationOptions{threads}))
            : nullptr;
    // Fractional budgets pin row tiles from the store's TilePool instead:
    // each stripe holds one pinned tile (the row it is scanning) and
    // falls back to the per-pair lazy pack when a frame cannot be
    // claimed — identical words from every source.
    TilePool* pool =
        resident == nullptr && store_ != nullptr
            ? store_->AcquireTilePool(sim, options_.pair_code_budget_bytes)
            : nullptr;
    ScanOrderedPairs(
        columns.rows(), EnumerationOptions{threads}, partial,
        [&](Tally& local, std::size_t i, std::size_t j) {
          if (local.per_request.empty()) {
            local.per_request.resize(n);
            for (RequestTally& tally : local.per_request) {
              tally.disagree.assign(k, 0);
              tally.disagree_expected.assign(k, 0);
            }
            local.pair_codes = kernel::PackedIsSameCodes(k);
            local.labels.assign(groups.size(), PairLabel::kUnrelated);
            local.diff_masks.assign(words, 0);
            local.diff_features.reserve(k);
          }
          for (std::size_t g = 0; g < groups.size(); ++g) {
            local.labels[g] =
                groups[g].active
                    ? ClassifyPairCompiled(
                          *queries[groups[g].representative].compiled, i, j,
                          sim)
                    : PairLabel::kUnrelated;
          }
          const std::uint64_t* pair_words =
              resident != nullptr ? resident->pair_words(i, j) : nullptr;
          for (std::size_t r = 0; r < n; ++r) {
            const Request& request = requests[r];
            if (!request.active) continue;
            const PairLabel label = local.labels[request.group];
            if (label == PairLabel::kUnrelated) continue;
            if (i == request.poi_first && j == request.poi_second) continue;
            if (pair_words == nullptr && pool != nullptr) {
              if (!local.has_tile_row || local.tile_row != i) {
                // Unpins the old row's tile, then pins (or builds) this
                // row's. Free frames only: a batch sweep wider than the
                // budget leaves the resident tiles pinned and falls back
                // to the cheaper per-pair lazy pack below.
                local.tile_ref = std::make_shared<TilePool::TileRef>(
                    pool->Fetch(i, TilePool::Admission::kFreeOnly));
                local.tile_row = i;
                local.has_tile_row = true;
              }
              if (local.tile_ref->valid()) {
                pair_words = local.tile_ref->words() + j * words;
              }
            }
            if (pair_words == nullptr) {
              kernel::PackIsSameCodesInto(table, i, j, sim,
                                          &local.pair_codes);
              pair_words = local.pair_codes.words();
            }
            // Word-at-a-time agreement test against this request's poi.
            // Word granularity accepts/rejects exactly as the per-call
            // chunked scan does — only the wasted work differs.
            const std::size_t disagreed = kernel::ComparePackedAgainstPoi(
                pair_words, request.poi_codes, max_disagree,
                local.diff_masks.data());
            if (disagreed == kernel::kPackedRejected) continue;
            RequestTally& tally = local.per_request[r];
            ++tally.similar_pairs;
            local.diff_features.clear();
            kernel::AppendMaskedFeatures(local.diff_masks.data(), words,
                                         local.diff_features);
            const bool expected = label == PairLabel::kExpected;
            for (std::size_t f : local.diff_features) {
              ++tally.disagree[f];
              if (expected) ++tally.disagree_expected[f];
            }
          }
        });
  }

  // Merge stripes and finish each query exactly as the per-call path does.
  for (std::size_t r = 0; r < n; ++r) {
    std::vector<std::size_t> disagree(k, 0);
    std::vector<std::size_t> disagree_expected(k, 0);
    std::size_t similar_pairs = 0;
    for (const Tally& local : partial) {
      if (local.per_request.empty()) continue;  // stripe saw no related pair
      const RequestTally& tally = local.per_request[r];
      similar_pairs += tally.similar_pairs;
      for (std::size_t f = 0; f < k; ++f) {
        disagree[f] += tally.disagree[f];
        disagree_expected[f] += tally.disagree_expected[f];
      }
    }
    std::vector<Value> poi_is_same(k);
    for (std::size_t f = 0; f < k; ++f) {
      poi_is_same[f] = DecodeIsSame(requests[r].poi_codes.CodeAt(f));
    }
    const std::vector<bool> excluded =
        OutcomeRawFeatureMask(*queries[r].bound, schema_);
    results[r] = ExplanationFromTallies(
        schema_, poi_is_same, excluded, disagree, disagree_expected,
        similar_pairs, options_.similarity_threshold, queries[r].width);
  }
  return results;
}

Result<Explanation> SimButDiff::ExplainLegacy(const Query& query,
                                              std::size_t width) const {
  Query bound = query;
  auto poi = ResolvePair(bound);
  if (!poi.ok()) return poi.status();
  const std::size_t poi_first = poi->first;
  const std::size_t poi_second = poi->second;

  const std::size_t k = schema_.raw_size();
  PairFeatureView poi_view(&schema_, &log_->at(poi_first),
                           &log_->at(poi_second), &options_.pair);
  std::vector<Value> poi_is_same(k);
  for (std::size_t f = 0; f < k; ++f) {
    poi_is_same[f] = poi_view.Get(f);
  }

  const std::vector<bool> excluded = OutcomeRawFeatureMask(bound, schema_);

  const std::size_t agree_threshold =
      AgreeThreshold(options_.similarity_threshold, k);
  std::vector<std::size_t> disagree(k, 0);
  std::vector<std::size_t> disagree_expected(k, 0);
  std::vector<std::size_t> diff_features;
  diff_features.reserve(k);
  std::size_t similar_pairs = 0;

  ForEachOrderedPair(
      *log_, schema_, options_.pair,
      [&](std::size_t i, std::size_t j, const PairFeatureView& view) {
        if (i == poi_first && j == poi_second) return true;
        const PairLabel label = ClassifyPair(bound, view);
        if (label == PairLabel::kUnrelated) return true;
        diff_features.clear();
        std::size_t agree = 0;
        for (std::size_t f = 0; f < k; ++f) {
          if (view.Get(f) == poi_is_same[f]) {
            ++agree;
          } else {
            diff_features.push_back(f);
          }
          if (diff_features.size() > k - agree_threshold) return true;
        }
        if (agree < agree_threshold) return true;
        ++similar_pairs;
        const bool expected = label == PairLabel::kExpected;
        for (std::size_t f : diff_features) {
          ++disagree[f];
          if (expected) ++disagree_expected[f];
        }
        return true;
      });

  return ExplanationFromTallies(schema_, poi_is_same, excluded, disagree,
                                disagree_expected, similar_pairs,
                                options_.similarity_threshold, width);
}

}  // namespace perfxplain
