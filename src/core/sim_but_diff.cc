#include "core/sim_but_diff.h"

#include <algorithm>
#include <cmath>

#include "core/pair_enumeration.h"

namespace perfxplain {

SimButDiff::SimButDiff(const ExecutionLog* log, SimButDiffOptions options)
    : log_(log), options_(options), schema_(log->schema()) {
  PX_CHECK(log != nullptr);
}

Result<Explanation> SimButDiff::Explain(const Query& query,
                                        std::size_t width) const {
  Query bound = query;
  PX_RETURN_IF_ERROR(bound.Bind(schema_));
  PX_RETURN_IF_ERROR(bound.Validate());
  auto first = log_->Find(bound.first_id);
  if (!first.ok()) return first.status();
  auto second = log_->Find(bound.second_id);
  if (!second.ok()) return second.status();

  const std::size_t k = schema_.raw_size();
  // isSame features occupy pair indexes [0, k).
  PairFeatureView poi_view(&schema_, &log_->at(first.value()),
                           &log_->at(second.value()), &options_.pair);
  std::vector<Value> poi_is_same(k);
  for (std::size_t f = 0; f < k; ++f) {
    poi_is_same[f] = poi_view.Get(f);
  }

  // Features the obs/exp clauses mention must not appear in explanations.
  std::vector<bool> excluded(k, false);
  for (const Predicate* predicate : {&bound.observed, &bound.expected}) {
    for (const Atom& atom : predicate->atoms()) {
      excluded[schema_.RawIndexOf(atom.pair_index())] = true;
    }
  }

  // Lines 4-11 of Algorithm 2, as one streaming pass: for every related
  // training pair similar to the pair of interest (>= s*k agreeing isSame
  // features), tally per-feature disagreement counts and how many of the
  // disagreeing pairs performed as expected.
  std::size_t agree_threshold = static_cast<std::size_t>(
      std::ceil(options_.similarity_threshold * static_cast<double>(k)));
  // With few features, ceil(s*k) can demand agreement on *everything*,
  // leaving no feature to run the what-if analysis on. Unless the caller
  // explicitly asked for exact agreement (s = 1), permit at least one
  // disagreement.
  if (options_.similarity_threshold < 1.0 && agree_threshold >= k && k > 0) {
    agree_threshold = k - 1;
  }
  std::vector<std::size_t> disagree(k, 0);
  std::vector<std::size_t> disagree_expected(k, 0);
  std::vector<std::size_t> diff_features;
  diff_features.reserve(k);
  std::size_t similar_pairs = 0;

  ForEachOrderedPair(
      *log_, schema_, options_.pair,
      [&](std::size_t i, std::size_t j, const PairFeatureView& view) {
        if (i == first.value() && j == second.value()) return true;
        const PairLabel label = ClassifyPair(bound, view);
        if (label == PairLabel::kUnrelated) return true;
        diff_features.clear();
        std::size_t agree = 0;
        for (std::size_t f = 0; f < k; ++f) {
          if (view.Get(f) == poi_is_same[f]) {
            ++agree;
          } else {
            diff_features.push_back(f);
          }
          // Early exit: even if all remaining features agree, the pair
          // cannot reach the threshold.
          if (diff_features.size() > k - agree_threshold) return true;
        }
        if (agree < agree_threshold) return true;
        ++similar_pairs;
        const bool expected = label == PairLabel::kExpected;
        for (std::size_t f : diff_features) {
          ++disagree[f];
          if (expected) ++disagree_expected[f];
        }
        return true;
      });
  if (similar_pairs == 0) {
    return Status::FailedPrecondition(
        "no training pairs are similar to the pair of interest at "
        "threshold " +
        std::to_string(options_.similarity_threshold));
  }

  // Line 12: rank features by the what-if score o/d.
  struct Scored {
    std::size_t feature;
    double score;
    std::size_t support;
  };
  std::vector<Scored> scored;
  scored.reserve(k);
  for (std::size_t f = 0; f < k; ++f) {
    if (excluded[f] || disagree[f] == 0) continue;
    if (poi_is_same[f].is_missing()) continue;  // atom would be inapplicable
    scored.push_back({f, static_cast<double>(disagree_expected[f]) /
                             static_cast<double>(disagree[f]),
                      disagree[f]});
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.support > b.support;
                   });

  // Lines 13-17: conjunction of the top-w features at the pair's values.
  Explanation explanation;
  for (const Scored& s : scored) {
    if (explanation.because.width() >= width) break;
    ExplanationAtom atom;
    atom.atom =
        Atom::Bound(schema_, s.feature, CompareOp::kEq, poi_is_same[s.feature]);
    atom.score = s.score;
    explanation.because.Append(atom.atom);
    explanation.because_trace.push_back(std::move(atom));
  }
  if (explanation.because.is_true()) {
    return Status::FailedPrecondition(
        "SimButDiff found no scoring features for this query");
  }
  return explanation;
}

}  // namespace perfxplain
