#include "core/explainer.h"

#include <algorithm>
#include <set>

#include "core/pair_enumeration.h"
#include "ml/split.h"
#include "pxql/compiled_predicate.h"

namespace perfxplain {

namespace {

/// Percentile rank of `value` within `all` (average rank for ties), in
/// [0, 1]. This is the normalizeScore step of Algorithm 1 (line 11-12):
/// raw precision and generality values are replaced by their percentile
/// ranks so that neither dominates the blended score.
double PercentileRank(double value, const std::vector<double>& all) {
  if (all.empty()) return 0.0;
  std::size_t less = 0;
  std::size_t equal = 0;
  for (double v : all) {
    if (v < value) ++less;
    else if (v == value) ++equal;
  }
  return (static_cast<double>(less) + 0.5 * static_cast<double>(equal)) /
         static_cast<double>(all.size());
}

/// The greedy clause loop of Algorithm 1 is generic over how the training
/// examples are stored. Both backends expose the same contract:
///  - size(): current working-set size;
///  - BestPredicate(f, options): per-feature max-info-gain candidate over
///    the working set, constrained to the pair of interest;
///  - Count(candidate): (satisfy, satisfy_target) over the working set;
///  - Filter(candidate): shrink the working set to satisfying examples,
///    returning (kept, kept_target).
///
/// ValueClauseDataset scans materialized Value vectors (the compatibility
/// path); EncodedClauseDataset scans the integer-coded training matrix and
/// produces bit-identical candidates, gains and scores.
class ValueClauseDataset {
 public:
  ValueClauseDataset(const PairSchema& schema,
                     std::vector<TrainingExample> examples,
                     bool target_expected)
      : schema_(&schema), working_(std::move(examples)) {
    if (!working_.empty()) poi_features_ = working_[0].features;
    // When generating a des' clause the "positive" label whose conditional
    // probability we maximize is `expected`; flip labels so the shared
    // machinery (which treats observed as positive) measures relevance
    // instead of precision (line 6 of Algorithm 1 and its §4.2 variant).
    if (target_expected) {
      for (TrainingExample& example : working_) {
        example.observed = !example.observed;
      }
    }
  }

  std::size_t size() const { return working_.size(); }

  std::optional<SplitCandidate> BestPredicate(
      std::size_t f, const SplitOptions& options) const {
    return BestPredicateForFeature(*schema_, working_, f, poi_features_[f],
                                   options);
  }

  void Count(const SplitCandidate& candidate, std::size_t* satisfy,
             std::size_t* satisfy_target) const {
    for (const TrainingExample& example : working_) {
      if (!candidate.atom.Eval(example.features)) continue;
      ++*satisfy;
      if (example.observed) ++*satisfy_target;
    }
  }

  std::pair<std::size_t, std::size_t> Filter(const SplitCandidate& chosen) {
    std::vector<TrainingExample> next;
    next.reserve(working_.size());
    std::size_t target_count = 0;
    for (TrainingExample& example : working_) {
      if (chosen.atom.Eval(example.features)) {
        if (example.observed) ++target_count;
        next.push_back(std::move(example));
      }
    }
    working_ = std::move(next);
    return {working_.size(), target_count};
  }

 private:
  const PairSchema* schema_;
  std::vector<TrainingExample> working_;
  std::vector<Value> poi_features_;
};

class EncodedClauseDataset {
 public:
  EncodedClauseDataset(const EncodedDataset& data, bool target_expected)
      : data_(&data), labels_(data.labels()) {
    rows_.reserve(data.rows());
    for (std::size_t r = 0; r < data.rows(); ++r) {
      rows_.push_back(static_cast<std::uint32_t>(r));
    }
    if (target_expected) {
      for (std::uint8_t& label : labels_) label = label ? 0 : 1;
    }
  }

  std::size_t size() const { return rows_.size(); }

  std::optional<SplitCandidate> BestPredicate(
      std::size_t f, const SplitOptions& options) const {
    return BestPredicateForFeatureEncoded(*data_, rows_, labels_, f,
                                          /*poi_row=*/0, options);
  }

  void Count(const SplitCandidate& candidate, std::size_t* satisfy,
             std::size_t* satisfy_target) const {
    const EncodedAtomTest test(*data_, candidate.atom);
    for (std::uint32_t r : rows_) {
      if (!test.Matches(*data_, r)) continue;
      ++*satisfy;
      if (labels_[r] != 0) ++*satisfy_target;
    }
  }

  std::pair<std::size_t, std::size_t> Filter(const SplitCandidate& chosen) {
    const EncodedAtomTest test(*data_, chosen.atom);
    std::vector<std::uint32_t> next;
    next.reserve(rows_.size());
    std::size_t target_count = 0;
    for (std::uint32_t r : rows_) {
      if (test.Matches(*data_, r)) {
        if (labels_[r] != 0) ++target_count;
        next.push_back(r);
      }
    }
    rows_ = std::move(next);
    return {rows_.size(), target_count};
  }

 private:
  const EncodedDataset* data_;
  std::vector<std::uint32_t> rows_;
  std::vector<std::uint8_t> labels_;
};

/// Shared greedy loop (lines 3-17 of Algorithm 1). See Explainer's class
/// comment for the per-step structure.
template <typename Dataset>
std::vector<ExplanationAtom> GenerateClauseWith(
    Dataset& working, const PairSchema& schema,
    const ExplainerOptions& options, std::size_t width,
    const std::vector<std::size_t>& excluded_raw,
    const std::vector<Atom>& redundant_atoms) {
  std::vector<ExplanationAtom> trace;
  if (working.size() == 0) return trace;
  const std::set<std::size_t> excluded(excluded_raw.begin(),
                                       excluded_raw.end());
  std::set<std::size_t> used_features;

  SplitOptions split_options;
  split_options.constrain_to_pair = true;

  for (std::size_t step = 0; step < width; ++step) {
    // Candidates isolating (almost) nothing but the pair of interest look
    // perfectly precise on the sample yet do not generalize; require a
    // sliver of support.
    split_options.min_support =
        std::max<std::size_t>(3, working.size() / 100);
    // Line 5: best (max info gain) predicate per feature.
    struct Candidate {
      SplitCandidate split;
      std::size_t pair_index;
      double metric = 0.0;      ///< P(target | p, X) over working set
      double generality = 0.0;  ///< P(p | X) over working set
    };
    std::vector<Candidate> candidates;
    for (std::size_t f = 0; f < schema.size(); ++f) {
      if (!schema.InLevel(f, options.level)) continue;
      if (!schema.IsDefined(f)) continue;
      const std::size_t raw_index = schema.RawIndexOf(f);
      if (excluded.count(raw_index) > 0) continue;
      if (used_features.count(f) > 0) continue;
      auto split = working.BestPredicate(f, split_options);
      if (!split.has_value()) continue;
      // Atoms every related pair satisfies by construction (they restate
      // the query's despite clause) carry no information.
      bool redundant = false;
      for (const Atom& atom : redundant_atoms) {
        if (atom == split->atom) {
          redundant = true;
          break;
        }
      }
      if (redundant) continue;
      Candidate candidate;
      candidate.split = std::move(split).value();
      candidate.pair_index = f;
      candidates.push_back(std::move(candidate));
    }
    if (candidates.empty()) break;

    // Lines 6-7: precision (or relevance) and generality of each winner.
    for (Candidate& candidate : candidates) {
      std::size_t satisfy = 0;
      std::size_t satisfy_target = 0;
      working.Count(candidate.split, &satisfy, &satisfy_target);
      candidate.generality =
          working.size() == 0 ? 0.0
                              : static_cast<double>(satisfy) /
                                    static_cast<double>(working.size());
      candidate.metric = satisfy == 0
                             ? 0.0
                             : static_cast<double>(satisfy_target) /
                                   static_cast<double>(satisfy);
    }

    // Lines 8-14: percentile-rank normalization and weighted blend.
    std::vector<double> metrics;
    std::vector<double> generalities;
    metrics.reserve(candidates.size());
    generalities.reserve(candidates.size());
    for (const Candidate& candidate : candidates) {
      metrics.push_back(candidate.metric);
      generalities.push_back(candidate.generality);
    }
    std::size_t best = 0;
    double best_score = -1.0;
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      const double score =
          options.normalize_scores
              ? options.precision_weight *
                        PercentileRank(candidates[c].metric, metrics) +
                    (1.0 - options.precision_weight) *
                        PercentileRank(candidates[c].generality,
                                       generalities)
              : options.precision_weight * candidates[c].metric +
                    (1.0 - options.precision_weight) *
                        candidates[c].generality;
      const bool better =
          score > best_score ||
          (score == best_score &&
           (candidates[c].metric > candidates[best].metric ||
            (candidates[c].metric == candidates[best].metric &&
             candidates[c].split.gain > candidates[best].split.gain)));
      if (c == 0 || better) {
        best = c;
        best_score = score;
      }
    }

    // Lines 16-17: extend the clause and keep only satisfying examples.
    ExplanationAtom chosen;
    chosen.atom = candidates[best].split.atom;
    chosen.info_gain = candidates[best].split.gain;
    chosen.score = best_score;
    used_features.insert(candidates[best].pair_index);

    const std::size_t before = working.size();
    const auto [kept, target_count] = working.Filter(candidates[best].split);
    chosen.generality_after =
        before == 0 ? 0.0
                    : static_cast<double>(kept) /
                          static_cast<double>(before);
    chosen.metric_after = kept == 0
                              ? 0.0
                              : static_cast<double>(target_count) /
                                    static_cast<double>(kept);
    trace.push_back(std::move(chosen));
    PX_CHECK(working.size() > 0);  // the pair of interest always satisfies X
  }
  return trace;
}

}  // namespace

namespace {

const ExecutionLog& CheckedLog(const ExecutionLog* log) {
  PX_CHECK(log != nullptr);
  return *log;
}

}  // namespace

Status CheckDefinition1(const CompiledQuery& compiled, std::size_t first,
                        std::size_t second, double sim_fraction) {
  if (!compiled.despite.Eval(first, second, sim_fraction)) {
    return Status::FailedPrecondition(
        "the pair of interest does not satisfy the DESPITE clause");
  }
  if (!compiled.observed.Eval(first, second, sim_fraction)) {
    return Status::FailedPrecondition(
        "the pair of interest does not satisfy the OBSERVED clause");
  }
  if (compiled.expected.Eval(first, second, sim_fraction)) {
    return Status::FailedPrecondition(
        "the pair of interest satisfies the EXPECTED clause; there is "
        "nothing to explain");
  }
  return Status::OK();
}

Explainer::Explainer(const ExecutionLog* log, ExplainerOptions options,
                     const ColumnarLog* columns)
    : log_(&CheckedLog(log)), options_(options), schema_(log->schema()) {
  if (columns == nullptr) {
    owned_columnar_ = std::make_unique<ColumnarLog>(*log);
    columnar_ = owned_columnar_.get();
  } else {
    columnar_ = columns;
  }
}

Result<Query> Explainer::PrepareQuery(const Query& query) const {
  Query bound = query;
  PX_RETURN_IF_ERROR(bound.Bind(schema_));
  PX_RETURN_IF_ERROR(bound.Validate());
  if (bound.first_id.empty() || bound.second_id.empty()) {
    return Status::InvalidArgument(
        "query must identify the pair of interest (FOR ... WHERE)");
  }
  auto first = log_->Find(bound.first_id);
  if (!first.ok()) return first.status();
  auto second = log_->Find(bound.second_id);
  if (!second.ok()) return second.status();
  // Definition 1: des(J1,J2) and obs(J1,J2) must hold; exp(J1,J2) must not.
  // Checked on the compiled programs so the whole Explain pipeline stays
  // encoded-only (no Value is ever materialized for a pair feature).
  const CompiledQuery compiled =
      CompiledQuery::Compile(bound, schema_, *columnar_);
  PX_RETURN_IF_ERROR(CheckDefinition1(compiled, first.value(),
                                      second.value(),
                                      options_.pair.sim_fraction));
  return bound;
}

std::vector<std::size_t> Explainer::ExcludedRawFeatures(
    const Query& bound_query) const {
  const std::vector<bool> mask = OutcomeRawFeatureMask(bound_query, schema_);
  std::vector<std::size_t> raw;
  for (std::size_t f = 0; f < mask.size(); ++f) {
    if (mask[f]) raw.push_back(f);
  }
  return raw;
}

Result<std::vector<TrainingExample>> Explainer::BuildExamples(
    const Query& bound_query, std::size_t poi_first,
    std::size_t poi_second) const {
  Rng rng(options_.seed);
  auto examples = BuildTrainingExamples(
      *log_, schema_, bound_query, poi_first, poi_second, options_.pair,
      options_.sampler, rng, options_.balanced_sampling);
  if (!examples.ok() || options_.max_pairs_per_record == 0) return examples;
  return EnforceRecordDiversity(std::move(examples).value(),
                                options_.max_pairs_per_record,
                                /*keep_first=*/true);
}

Result<EncodedDataset> Explainer::BuildEncodedExamples(
    const Query& bound_query, std::size_t poi_first,
    std::size_t poi_second) const {
  return BuildEncodedExamplesWith(bound_query, poi_first, poi_second,
                                  options_);
}

Result<EncodedDataset> Explainer::BuildEncodedExamplesWith(
    const Query& bound_query, std::size_t poi_first, std::size_t poi_second,
    const ExplainerOptions& options) const {
  Rng rng(options.seed);
  const CompiledQuery compiled =
      CompiledQuery::Compile(bound_query, schema_, *columnar_);
  auto sampled = SampleRelatedPairs(
      *columnar_, compiled, poi_first, poi_second,
      options.pair.sim_fraction, options.sampler, rng,
      options.balanced_sampling, EnumerationOptions{options.threads});
  if (!sampled.ok()) return sampled.status();
  std::vector<PairRef> pairs = std::move(sampled).value();
  if (options.max_pairs_per_record > 0) {
    pairs = EnforceRecordDiversity(std::move(pairs),
                                   options.max_pairs_per_record,
                                   /*keep_first=*/true);
  }
  return EncodedDataset(*columnar_, schema_, pairs,
                        options.pair.sim_fraction);
}

Result<EncodedDataset> Explainer::BuildEncodedExamplesFromScan(
    const Query& bound_query, const RelatedPairScan& scan,
    std::size_t poi_first, std::size_t poi_second,
    const ExplainerOptions& options) const {
  (void)bound_query;  // the scan already encodes the query's shape
  Rng rng(options.seed);
  auto sampled =
      ReplaySampleDraws(scan, columnar_->rows(), poi_first, poi_second,
                        options.sampler, rng, options.balanced_sampling);
  if (!sampled.ok()) return sampled.status();
  std::vector<PairRef> pairs = std::move(sampled).value();
  if (options.max_pairs_per_record > 0) {
    pairs = EnforceRecordDiversity(std::move(pairs),
                                   options.max_pairs_per_record,
                                   /*keep_first=*/true);
  }
  return EncodedDataset(*columnar_, schema_, pairs,
                        options.pair.sim_fraction);
}

Result<Explanation> Explainer::ExplainPreparedWithScan(
    const Query& bound, const RelatedPairScan& scan, std::size_t poi_first,
    std::size_t poi_second, const ExplainerOptions& options) const {
  auto examples = BuildEncodedExamplesFromScan(bound, scan, poi_first,
                                               poi_second, options);
  if (!examples.ok()) return examples.status();
  return ExplainPreparedWithExamples(bound, examples.value(), options);
}

Result<Explanation> Explainer::ExplainPreparedWithExamples(
    const Query& bound, const EncodedDataset& examples,
    const ExplainerOptions& options) const {
  Explanation explanation;
  EncodedClauseDataset working(examples, /*target_expected=*/false);
  explanation.because_trace =
      GenerateClauseWith(working, schema_, options, options.width,
                         ExcludedRawFeatures(bound), bound.despite.atoms());
  explanation.because = ClauseToPredicate(explanation.because_trace);
  if (explanation.because.is_true()) {
    return Status::Internal("no applicable because clause could be built");
  }
  return explanation;
}

std::vector<ExplanationAtom> Explainer::GenerateClause(
    std::vector<TrainingExample> examples, std::size_t width,
    bool target_expected, const std::vector<std::size_t>& excluded_raw,
    const std::vector<Atom>& redundant_atoms) const {
  ValueClauseDataset working(schema_, std::move(examples), target_expected);
  return GenerateClauseWith(working, schema_, options_, width, excluded_raw,
                            redundant_atoms);
}

std::vector<ExplanationAtom> Explainer::GenerateClause(
    const EncodedDataset& examples, std::size_t width, bool target_expected,
    const std::vector<std::size_t>& excluded_raw,
    const std::vector<Atom>& redundant_atoms) const {
  EncodedClauseDataset working(examples, target_expected);
  return GenerateClauseWith(working, schema_, options_, width, excluded_raw,
                            redundant_atoms);
}

Predicate Explainer::ClauseToPredicate(
    const std::vector<ExplanationAtom>& trace) {
  Predicate predicate;
  for (const ExplanationAtom& atom : trace) {
    predicate.Append(atom.atom);
  }
  return predicate;
}

Result<Explanation> Explainer::Explain(const Query& query) const {
  auto bound = PrepareQuery(query);
  if (!bound.ok()) return bound.status();
  return ExplainPrepared(*bound, log_->Find(bound->first_id).value(),
                         log_->Find(bound->second_id).value(), options_);
}

Result<Explanation> Explainer::ExplainPrepared(
    const Query& bound, std::size_t poi_first, std::size_t poi_second,
    const ExplainerOptions& options) const {
  auto examples =
      BuildEncodedExamplesWith(bound, poi_first, poi_second, options);
  if (!examples.ok()) return examples.status();

  Explanation explanation;
  EncodedClauseDataset working(examples.value(), /*target_expected=*/false);
  explanation.because_trace =
      GenerateClauseWith(working, schema_, options, options.width,
                         ExcludedRawFeatures(bound), bound.despite.atoms());
  explanation.because = ClauseToPredicate(explanation.because_trace);
  if (explanation.because.is_true()) {
    return Status::Internal("no applicable because clause could be built");
  }
  return explanation;
}

Result<Predicate> Explainer::GenerateDespite(const Query& query,
                                             std::size_t width) const {
  auto bound = PrepareQuery(query);
  if (!bound.ok()) return bound.status();
  return GenerateDespitePrepared(*bound,
                                 log_->Find(bound->first_id).value(),
                                 log_->Find(bound->second_id).value(), width,
                                 options_);
}

Result<Predicate> Explainer::GenerateDespitePrepared(
    const Query& bound, std::size_t poi_first, std::size_t poi_second,
    std::size_t width, const ExplainerOptions& options) const {
  auto examples =
      BuildEncodedExamplesWith(bound, poi_first, poi_second, options);
  if (!examples.ok()) return examples.status();
  EncodedClauseDataset working(examples.value(), /*target_expected=*/true);
  const std::vector<ExplanationAtom> trace =
      GenerateClauseWith(working, schema_, options, width,
                         ExcludedRawFeatures(bound), bound.despite.atoms());
  return ClauseToPredicate(trace);
}

Result<Explanation> Explainer::ExplainWithAutoDespite(
    const Query& query) const {
  auto bound = PrepareQuery(query);
  if (!bound.ok()) return bound.status();
  return ExplainWithAutoDespitePrepared(
      *bound, log_->Find(bound->first_id).value(),
      log_->Find(bound->second_id).value(), options_);
}

Result<Explanation> Explainer::ExplainWithAutoDespitePrepared(
    const Query& bound, std::size_t poi_first, std::size_t poi_second,
    const ExplainerOptions& options) const {
  auto examples =
      BuildEncodedExamplesWith(bound, poi_first, poi_second, options);
  if (!examples.ok()) return examples.status();

  // des' clause first, truncated at the relevance threshold.
  EncodedClauseDataset despite_working(examples.value(),
                                       /*target_expected=*/true);
  std::vector<ExplanationAtom> despite_trace = GenerateClauseWith(
      despite_working, schema_, options, options.despite_width,
      ExcludedRawFeatures(bound), bound.despite.atoms());
  std::size_t keep = despite_trace.size();
  for (std::size_t i = 0; i < despite_trace.size(); ++i) {
    if (despite_trace[i].metric_after >=
        options.despite_relevance_threshold) {
      keep = i + 1;
      break;
    }
  }
  despite_trace.resize(keep);

  Explanation explanation;
  explanation.despite_trace = despite_trace;
  explanation.despite = ClauseToPredicate(despite_trace);

  // bec clause in the context of des AND des'.
  Query extended = bound;
  extended.despite = extended.despite.And(explanation.despite);
  auto extended_examples =
      BuildEncodedExamplesWith(extended, poi_first, poi_second, options);
  if (!extended_examples.ok()) return extended_examples.status();
  EncodedClauseDataset because_working(extended_examples.value(),
                                       /*target_expected=*/false);
  explanation.because_trace = GenerateClauseWith(
      because_working, schema_, options, options.width,
      ExcludedRawFeatures(extended), extended.despite.atoms());
  explanation.because = ClauseToPredicate(explanation.because_trace);
  if (explanation.because.is_true()) {
    return Status::Internal("no applicable because clause could be built");
  }
  return explanation;
}

}  // namespace perfxplain
