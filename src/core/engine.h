#ifndef PERFXPLAIN_CORE_ENGINE_H_
#define PERFXPLAIN_CORE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "core/explainer.h"
#include "core/explanation.h"
#include "core/metrics.h"
#include "core/result_cache.h"
#include "core/rule_of_thumb.h"
#include "core/sim_but_diff.h"
#include "features/pair_code_store.h"
#include "log/columnar.h"
#include "log/execution_log.h"
#include "pxql/compiled_predicate.h"
#include "pxql/parser.h"
#include "pxql/query.h"

namespace perfxplain {

/// Which explanation-generation technique to run (§4 and §5).
enum class Technique {
  kPerfXplain,
  kRuleOfThumb,
  kSimButDiff,
};

const char* TechniqueToString(Technique technique);

/// The immutable data a query runs against: one log of past executions,
/// its pair schema, the dictionary-encoded columnar replica every scan
/// reads, and the lazily built PairCodeStore of packed per-pair isSame
/// codes. A snapshot is built once and never mutated afterwards (the
/// store's lazy build is call_once-guarded and invisible to readers), so
/// any number of Engines, PreparedQueries and worker threads may share one
/// through a shared_ptr<const LogSnapshot> — the serving-engine split
/// between shared immutable data and cheap per-request state.
class LogSnapshot {
 public:
  explicit LogSnapshot(ExecutionLog log)
      : id_(NextId()),
        log_(std::move(log)),
        schema_(log_.schema()),
        columns_(log_),
        pair_codes_(&columns_) {}

  /// Incremental promotion: a snapshot of `log` that extends `base`.
  /// `log` must be base's log plus appended records — same schema, first
  /// base.log().size() records identical and in the same order (the
  /// delta-log promoter constructs exactly this). The columnar replica
  /// copies base's columns and ingests only the new rows; append-only
  /// interning keeps every dictionary code identical, so the result is
  /// bitwise indistinguishable from LogSnapshot(log) built cold at the
  /// cost of the delta only. The pair-code store starts cold either way
  /// (planes build lazily); the promoter re-warms it from base's built
  /// plane via PairCodeStore::AcquireSeeded, which copies old-row tiles
  /// and packs only pairs touching new rows.
  LogSnapshot(ExecutionLog log, const LogSnapshot& base)
      : id_(NextId()),
        log_(std::move(log)),
        schema_(log_.schema()),
        columns_(base.columns_, log_),
        pair_codes_(&columns_) {}

  LogSnapshot(const LogSnapshot&) = delete;
  LogSnapshot& operator=(const LogSnapshot&) = delete;

  /// Process-unique, monotonically increasing id. ResultCache keys are
  /// prefixed with it, so results of different snapshots can never
  /// collide and a retired snapshot's entries are droppable as one key
  /// range (ResultCache::InvalidateSnapshot) when engines share a cache
  /// across a snapshot rotation.
  std::uint64_t id() const { return id_; }

  /// Raises the process-wide id counter so the next snapshot gets an id
  /// strictly greater than `id`. Recovery calls this with the persisted
  /// checkpoint generation before building any snapshot, so generation
  /// ids stay monotone across restarts (a recovered process must never
  /// re-issue a generation an on-disk checkpoint already names).
  static void EnsureNextIdAfter(std::uint64_t id);

  const ExecutionLog& log() const { return log_; }
  const PairSchema& pair_schema() const { return schema_; }
  const ColumnarLog& columns() const { return columns_; }
  /// The snapshot-resident packed pair-code cache. Computed at most once
  /// per (snapshot, similarity fraction) and shared by every engine,
  /// query and thread over this snapshot; SimButDiff borrows it so
  /// sequential queries skip per-pair packing (subject to
  /// SimButDiffOptions::pair_code_budget_bytes).
  const PairCodeStore& pair_codes() const { return pair_codes_; }

 private:
  static std::uint64_t NextId();

  std::uint64_t id_;
  ExecutionLog log_;
  PairSchema schema_;
  ColumnarLog columns_;
  PairCodeStore pair_codes_;
};

/// Admission-control ceilings: an Engine estimates each request's cost
/// before running it and rejects work whose estimate exceeds a configured
/// limit with kResourceExhausted (the estimate is in the message), instead
/// of pinning cores or OOM-ing mid-scan. 0 means unlimited. Estimates are
/// upper bounds derived from the snapshot alone, so admission is
/// deterministic per (snapshot, request, limits).
struct EngineLimits {
  /// Ceiling on the candidate ordered-pair count n·(n−1) a request's scans
  /// may enumerate.
  std::size_t max_candidate_pairs = 0;
  /// Ceiling on the PairCodeStore bytes a SimButDiff request may cause to
  /// be resident, charged per-frame via PairCodeStore::ResidentBytesFor:
  /// the whole plane when the engine's pair_code_budget_bytes lets it
  /// build, otherwise the tile-pool frames that budget buys (so a
  /// fractional budget is charged its working set, not the plane it will
  /// never build). A request that would stream outright costs no store
  /// bytes and is not rejected.
  std::size_t max_pair_store_bytes = 0;
  /// Ceiling on the PerfXplain training-matrix size, estimated as
  /// (sample_size + 1) · pair-schema width cells.
  std::size_t max_training_cells = 0;
};

/// Per-technique tunables of one Engine. Fixed at construction; per-request
/// variation goes through ExplainRequest instead.
struct EngineOptions {
  ExplainerOptions explainer;
  RuleOfThumbOptions rule_of_thumb;
  SimButDiffOptions sim_but_diff;
  EngineLimits limits;

  /// Byte budget of the engine-owned ResultCache consulted before any
  /// scan: a repeated (snapshot, query, technique, width, seed, ...)
  /// request becomes one map lookup. 0 (the default) disables caching.
  /// Ignored when `result_cache` is supplied.
  std::size_t result_cache_bytes = 0;

  /// An existing cache to share instead of owning one — the snapshot-
  /// rotation pattern: engines over successive snapshots share one cache
  /// (keys embed the snapshot id, so entries never cross over) and the
  /// rotator calls ResultCache::InvalidateSnapshot(old->id()) to reclaim
  /// the retired snapshot's bytes.
  std::shared_ptr<ResultCache> result_cache;
};

/// A parsed, bound, compiled query with its pair of interest resolved —
/// the per-request state of the service API. Built once by
/// Engine::Prepare and reusable across any number of Explain calls (and
/// threads): the parse/bind/validate/compile/find work is never repeated.
/// A PreparedQuery pins the snapshot it was prepared against, so it stays
/// valid even if the Engine is destroyed first; it must only be passed to
/// an Engine sharing the same snapshot (enforced — other engines reject
/// it with InvalidArgument, since its compiled programs point into this
/// snapshot's columns).
class PreparedQuery {
 public:
  PreparedQuery() = default;

  /// The bound query (predicates bound to the snapshot's pair schema).
  const Query& bound() const { return bound_; }
  /// Row indexes of the pair of interest in the snapshot's log.
  std::size_t poi_first() const { return poi_first_; }
  std::size_t poi_second() const { return poi_second_; }
  /// The query's des/obs/exp programs compiled against the snapshot's
  /// columns.
  const CompiledQuery& compiled() const { return compiled_; }
  /// Definition 1 status: OK when des and obs hold for the pair of
  /// interest and exp does not, under the preparing engine's similarity
  /// fraction. Only the PerfXplain technique enforces Definition 1 — the
  /// baselines answer queries whose pair of interest violates it, as
  /// they always did — and enforcement re-derives the check under the
  /// *executing* engine's options (engines sharing a snapshot may run
  /// different similarity fractions).
  const Status& definition1() const { return definition1_; }
  /// The snapshot this query was prepared against.
  const std::shared_ptr<const LogSnapshot>& snapshot() const {
    return snapshot_;
  }

 private:
  friend class Engine;

  std::shared_ptr<const LogSnapshot> snapshot_;
  Query bound_;
  std::size_t poi_first_ = 0;
  std::size_t poi_second_ = 0;
  CompiledQuery compiled_;
  Status definition1_;
};

/// One explanation request: the technique to run plus the per-request
/// knobs. Everything not settable here comes from the EngineOptions fixed
/// at Engine construction.
struct ExplainRequest {
  Technique technique = Technique::kPerfXplain;

  /// Number of atoms in the because clause; 0 uses the engine's configured
  /// ExplainerOptions::width.
  std::size_t width = 0;

  /// PerfXplain technique only: machine-generate a des' clause first and
  /// fold it into the query (§4.2 / §6.4). Ignored by the baselines.
  bool auto_despite = false;

  /// Also measure the explanation's metrics over the engine's log (an
  /// O(n^2) scan — off by default).
  bool evaluate = false;

  /// Override of the sampling seed (PerfXplain technique). Explanations
  /// stay deterministic given (snapshot, query, options, seed).
  std::optional<std::uint64_t> seed;

  /// Override of the enumeration worker-thread count for this request.
  /// Observation-free: results are identical for every value.
  std::optional<int> threads;

  /// Soft deadline in milliseconds, measured from Explain entry; 0 = none.
  /// Long-running loops checkpoint cooperatively and the request returns
  /// kDeadlineExceeded once the deadline passes. Whenever no deadline
  /// fires the result is bitwise identical to an unbounded run — the
  /// checkpoints never alter any computed value.
  std::int64_t deadline_ms = 0;

  /// Optional shared cancellation flag. Any thread may call Cancel() at
  /// any time; the request observes it at its next checkpoint and returns
  /// kCancelled. The same token may be shared by many requests. Neither
  /// cancellation nor a deadline can corrupt the shared LogSnapshot: an
  /// interrupted PairCodeStore build is rolled back and rebuilt by the
  /// next request.
  std::shared_ptr<const CancelToken> cancel;
};

/// What one request produced: the explanation plus measured wall-clock
/// timings (and metrics when requested).
struct ExplainResponse {
  Technique technique = Technique::kPerfXplain;
  Explanation explanation;

  /// Generation id of the LogSnapshot this response was computed on
  /// (LogSnapshot::id of the answering engine's snapshot). During a live
  /// rotation, requests prepared before the swap drain on the old
  /// generation while new ones run on the new — this field tells callers
  /// which one each response observed.
  std::uint64_t snapshot_id = 0;

  /// Metrics over the engine's log, when ExplainRequest::evaluate was set.
  std::optional<ExplanationMetrics> metrics;

  /// Wall-clock cost of generating the explanation. For requests answered
  /// by the shared scan of ExplainBatch this is the amortized share
  /// (scan time / batched requests) — the batch's whole point.
  double explain_ms = 0.0;
  /// Wall-clock cost of the evaluate scan (0 when not requested).
  double evaluate_ms = 0.0;
  /// True when the response came from an ExplainBatch shared scan.
  bool batched = false;
  /// SimButDiff technique only: whether the request ran on the snapshot's
  /// resident PairCodeStore (within the engine's memory budget) ...
  bool pair_store_hit = false;
  /// ... and whether this very call paid the store's one-time build.
  /// bench::RunOnce surfaces both so trajectory timings are not silently
  /// polluted by build cost. Approximate under concurrency: a build
  /// finishing on another thread mid-call can also flip it.
  bool pair_store_built = false;
  /// True when the whole response came out of the engine's ResultCache —
  /// no scan ran and explain_ms is the lookup cost. Always false when the
  /// engine has no cache (EngineOptions::result_cache_bytes = 0).
  bool result_cache_hit = false;
  /// Tile-pool traffic this request drove (SimButDiff on the buffer-pool
  /// middle path only; all zero on the resident-plane and streaming
  /// paths). Deltas of the store's counters bracketing the call, so
  /// approximate under concurrency like pair_store_built.
  std::uint64_t tile_hits = 0;
  std::uint64_t tile_misses = 0;
  std::uint64_t tile_evictions = 0;
};

/// The thread-safe service facade: one immutable LogSnapshot, one
/// Explainer/SimButDiff/RuleOfThumb bound to it, and stateless per-request
/// execution. `Explain` is safe to call from any number of threads
/// concurrently — all technique state is immutable after construction
/// except the lazily built RuleOfThumb ranking, which is initialized
/// behind std::call_once (the fix for the old facade's lazy-init race).
///
/// Typical use:
///   Engine engine(std::move(job_log));
///   auto prepared = engine.PrepareText(
///       "FOR J1, J2 WHERE J1.JobID = 'job_000001' AND "
///       "J2.JobID = 'job_000002' "
///       "DESPITE numinstances_isSame = T "
///       "OBSERVED duration_compare = GT EXPECTED duration_compare = SIM");
///   ExplainRequest request;
///   request.evaluate = true;
///   auto response = engine.Explain(*prepared, request);
class Engine {
 public:
  explicit Engine(ExecutionLog log, EngineOptions options = {});
  /// Shares an existing snapshot (e.g. with other Engines serving the
  /// same log under different options).
  explicit Engine(std::shared_ptr<const LogSnapshot> snapshot,
                  EngineOptions options = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const std::shared_ptr<const LogSnapshot>& snapshot() const {
    return snapshot_;
  }
  const ExecutionLog& log() const { return snapshot_->log(); }
  const PairSchema& pair_schema() const { return snapshot_->pair_schema(); }
  const EngineOptions& options() const { return options_; }
  const Explainer& explainer() const { return *explainer_; }
  /// The engine's result cache; null when caching is disabled. Shared
  /// with the caller that supplied EngineOptions::result_cache.
  const std::shared_ptr<ResultCache>& result_cache() const {
    return result_cache_;
  }

  /// Parses, binds, validates and compiles the query and resolves its pair
  /// of interest — everything per-query that does not depend on the
  /// request. Definition 1 is checked here but only recorded (see
  /// PreparedQuery::definition1).
  Result<PreparedQuery> Prepare(const Query& query) const;
  Result<PreparedQuery> PrepareText(const std::string& pxql) const;

  /// Runs one request against a prepared query. Thread-safe and const:
  /// concurrent calls with the same arguments produce bitwise-identical
  /// responses.
  Result<ExplainResponse> Explain(const PreparedQuery& prepared,
                                  const ExplainRequest& request = {}) const;

  /// One request of a batch.
  struct BatchItem {
    const PreparedQuery* prepared = nullptr;
    ExplainRequest request;
  };

  /// Answers a batch of requests, amortizing per-pair work across the
  /// batch:
  ///  - its SimButDiff requests share ONE ordered-pair scan in which each
  ///    pair is classified once per distinct query shape and its packed
  ///    isSame codes are read from the snapshot store (or built once)
  ///    for every agreement test (SimButDiff::ExplainBatch);
  ///  - its PerfXplain requests sharing one query *shape* (structurally
  ///    identical bound despite/observed/expected, no auto-despite) share
  ///    ONE related-pair classification scan (ScanRelatedPairs); each
  ///    request then replays only its own serial sampling draws and
  ///    clause generation (Explainer::ExplainPreparedWithScan). When the
  ///    scan overflows the sample buffer cap, the group falls back to
  ///    per-call execution.
  /// All other requests run through Explain. Results are bitwise
  /// identical to issuing the requests one-by-one; responses line up with
  /// `items`. The shared scans use the engine's configured thread counts
  /// (per-request `threads` overrides apply only to non-batched
  /// requests).
  std::vector<Result<ExplainResponse>> ExplainBatch(
      const std::vector<BatchItem>& items) const;

  /// Generates only a des' clause of width `width` (0 = the engine's
  /// despite_width) for an under-specified query (§6.4).
  Result<Predicate> GenerateDespite(const PreparedQuery& prepared,
                                    std::size_t width = 0) const;

  /// Measures an explanation's metrics over this engine's log.
  Result<ExplanationMetrics> Evaluate(const PreparedQuery& prepared,
                                      const Explanation& explanation) const;

  /// Measures an explanation over a different log (e.g. the held-out test
  /// log of the §6.1 protocol), which must share this log's schema.
  Result<ExplanationMetrics> EvaluateOn(const ExecutionLog& test_log,
                                        const Query& query,
                                        const Explanation& explanation) const;

 private:
  /// The lazily built RuleOfThumb (its construction runs a full RReliefF
  /// ranking pass). std::call_once makes the first concurrent callers
  /// race-free; every later call is a plain load.
  const RuleOfThumb& rule_of_thumb() const;

  /// Rejects a PreparedQuery that was not prepared against this engine's
  /// snapshot (its compiled programs would point into another log's
  /// columns) — including default-constructed ones.
  Status CheckPrepared(const PreparedQuery& prepared) const;

  /// Definition 1 under THIS engine's similarity fraction (see
  /// PreparedQuery::definition1).
  Status Definition1(const PreparedQuery& prepared) const;

  /// Admission control: estimates the request's cost against
  /// options_.limits and returns kResourceExhausted (with the estimate)
  /// when a ceiling is exceeded.
  Status AdmitRequest(const ExplainRequest& request) const;

  /// The request's deadline/cancel state as an ExecContext; empty() when
  /// the request sets neither.
  ExecContext MakeExecContext(const ExplainRequest& request) const;

  /// The engine's ExplainerOptions with the request's width/seed/threads
  /// overrides applied — the one definition both the per-call PerfXplain
  /// path and the batched shared-scan path use, so the two can never
  /// diverge on how a request maps to options.
  ExplainerOptions ExplainerOptionsFor(const ExplainRequest& request) const;

  /// Runs the evaluate scan when the request asked for one and attaches
  /// metrics + evaluate_ms to the response. Shared by Explain and both
  /// batched paths.
  Status AttachEvaluation(const PreparedQuery& prepared,
                          const ExplainRequest& request,
                          ExplainResponse* response) const;

  Result<Explanation> Generate(const PreparedQuery& prepared,
                               const ExplainRequest& request) const;

  /// The ResultCache key of (prepared, request) under this engine:
  /// snapshot id prefix, the options fingerprint, technique, effective
  /// width/seed, the auto_despite/evaluate switches, the resolved pair
  /// of interest and the bound query's PXQL text. Thread counts and
  /// memory budgets are absent — observation-free by construction.
  std::string CacheKeyFor(const PreparedQuery& prepared,
                          const ExplainRequest& request) const;

  // Shared-state invariants, machine-checked where the tooling allows
  // (see common/thread_annotations.h and docs/ARCHITECTURE.md): all
  // members below are written only during construction and immutable
  // afterwards — except the call_once pair, whose publication
  // std::call_once orders. Clang Thread Safety Analysis has no
  // annotation for once_flag-guarded members, so that handoff is proved
  // by the TSan CI job (EngineTest's concurrent hammering) instead;
  // never touch rule_of_thumb_ except through rule_of_thumb().
  std::shared_ptr<const LogSnapshot> snapshot_;
  EngineOptions options_;
  /// Every result-affecting engine option, serialized once at
  /// construction into the middle segment of every cache key (see
  /// CacheKeyFor) so engines with different options sharing one cache
  /// never serve each other's results.
  std::string options_fingerprint_;
  std::shared_ptr<ResultCache> result_cache_;  ///< null = caching off
  std::unique_ptr<Explainer> explainer_;
  std::unique_ptr<SimButDiff> sim_but_diff_;
  mutable std::once_flag rule_of_thumb_once_;
  mutable std::unique_ptr<RuleOfThumb> rule_of_thumb_;  ///< via rule_of_thumb()
};

}  // namespace perfxplain

#endif  // PERFXPLAIN_CORE_ENGINE_H_
