#ifndef PERFXPLAIN_CORE_EXPLAINER_H_
#define PERFXPLAIN_CORE_EXPLAINER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/explanation.h"
#include "core/pair_enumeration.h"
#include "features/pair_features.h"
#include "features/pair_schema.h"
#include "log/columnar.h"
#include "log/execution_log.h"
#include "ml/encoded_dataset.h"
#include "ml/sampler.h"
#include "pxql/compiled_predicate.h"
#include "pxql/query.h"

namespace perfxplain {

/// Tunables of the PerfXplain explanation generator (Algorithm 1).
struct ExplainerOptions {
  /// Number of atomic predicates in the because clause (w in Algorithm 1).
  std::size_t width = 3;

  /// Blend between the normalized precision and generality scores
  /// (line 13; the paper uses 0.8, favoring precision).
  double precision_weight = 0.8;

  /// Balanced-sampling parameters (§4.3; sample size 2000 in the paper).
  SamplerOptions sampler;

  /// Pair-feature computation (10% similarity threshold).
  PairFeatureOptions pair;

  /// Which pair features the explanation may use (§6.8). Level 3 = all.
  FeatureLevel level = FeatureLevel::kLevel3;

  /// Width of machine-generated despite clauses (§6.4 uses 3).
  std::size_t despite_width = 3;

  /// ExplainWithAutoDespite stops extending the despite clause once its
  /// relevance over the training sample reaches this threshold (§4.2:
  /// "an easy modification is to set a relevance threshold r").
  double despite_relevance_threshold = 0.95;

  /// When non-zero, caps how many sampled training pairs any single
  /// execution may participate in — the diversity-biased sampling the
  /// paper suggests as future work (§4.3). 0 disables the cap.
  std::size_t max_pairs_per_record = 0;

  /// Percentile-rank normalization of the precision/generality scores
  /// before blending (lines 11-12 of Algorithm 1). Disabling reverts to
  /// the paper's earlier implementation, which the authors report let
  /// precision drown out generality. Ablated in bench_ablation.
  bool normalize_scores = true;

  /// Balanced sampling (§4.3). Disabling samples related pairs uniformly,
  /// which on skewed logs lets the majority label dominate training.
  /// Ablated in bench_ablation.
  bool balanced_sampling = true;

  /// Seed of the per-call sampling Rng; explanations are deterministic
  /// given (log, query, options).
  std::uint64_t seed = 17;

  /// Worker threads for the columnar pair enumeration (0 = process
  /// default). Thread count never changes any result — per-thread partial
  /// results merge in row order and sampling draws replay serially.
  int threads = 0;
};

/// Generates PerfXplain explanations from a log of past executions.
///
/// The despite and because clauses are built symmetrically (§4.2): a greedy
/// loop picks, at each step, the max-information-gain predicate per feature
/// (restricted to predicates the pair of interest satisfies, so the result
/// is applicable per Definition 3), scores the per-feature winners by a
/// weighted blend of percentile-normalized precision (bec) or relevance
/// (des') and generality, appends the best atom, and recurses on the
/// examples that satisfy the clause so far. Features mentioned by the
/// observed/expected clauses (the runtime metric itself) are excluded from
/// explanations.
class Explainer {
 public:
  /// `log` must outlive the explainer. When `columns` is non-null it must
  /// be the columnar copy of `log` (and outlive this object too); the
  /// explainer then shares it instead of building its own — the Engine
  /// passes its snapshot's so every technique scans one replica.
  Explainer(const ExecutionLog* log, ExplainerOptions options,
            const ColumnarLog* columns = nullptr);

  const PairSchema& pair_schema() const { return schema_; }
  const ExplainerOptions& options() const { return options_; }

  /// Resolves the pair of interest from the query's ids, checks Definition 1
  /// (des and obs hold for the pair, exp does not) and returns the bound
  /// query. Exposed for callers that drive the pieces separately.
  Result<Query> PrepareQuery(const Query& query) const;

  /// Default mode: generates only the bec clause (§4.2: "by default,
  /// PerfXplain generates only the bec clause").
  Result<Explanation> Explain(const Query& query) const;

  /// Generates a des' clause of width `width` for the query (the user asks
  /// for a despite clause explicitly, §6.4).
  Result<Predicate> GenerateDespite(const Query& query,
                                    std::size_t width) const;

  /// Generates a des' clause (stopping early at the relevance threshold),
  /// folds it into the query, then generates the bec clause in its context.
  Result<Explanation> ExplainWithAutoDespite(const Query& query) const;

  /// The entry points behind Engine::Explain: the same three pipelines
  /// starting from a query already prepared (bound, validated, Definition 1
  /// checked — see PrepareQuery) with its pair of interest resolved, under
  /// explicit per-request options. The parse/bind/resolve work is paid once
  /// per PreparedQuery instead of once per call. `options` may differ from
  /// the constructor options only in width / despite_width / seed /
  /// threads: anything that changes pair semantics (sim_fraction, level,
  /// sampling sizes) would desynchronize the check PrepareQuery already
  /// performed. Thread-safe: these methods touch only immutable state and
  /// call-local Rngs.
  Result<Explanation> ExplainPrepared(const Query& bound,
                                      std::size_t poi_first,
                                      std::size_t poi_second,
                                      const ExplainerOptions& options) const;

  /// ExplainPrepared with the related-pair counting scan already done —
  /// the amortization seam of Engine::ExplainBatch for PerfXplain: the
  /// O(n²) classification pass depends only on the query *shape* (its
  /// three bound predicates), so a batch of structurally identical
  /// queries shares one ScanRelatedPairs and each request replays only
  /// its own serial sampling draws, encoding and clause generation.
  /// `scan` must come from ScanRelatedPairs over this explainer's columns
  /// with the query's compiled programs and this engine's sim_fraction,
  /// and must not be overflowed. Bitwise identical to ExplainPrepared.
  Result<Explanation> ExplainPreparedWithScan(
      const Query& bound, const RelatedPairScan& scan, std::size_t poi_first,
      std::size_t poi_second, const ExplainerOptions& options) const;

  /// The per-request half of ExplainPreparedWithScan, split at the encoded
  /// training matrix: serial sampling replay + diversity cap + encoding.
  /// The matrix depends only on (scan, pair of interest, seed, sampling
  /// options, sim_fraction) — NOT on the clause width — so ExplainBatch
  /// builds it once per (shape, seed, poi) sub-group and feeds it to
  /// ExplainPreparedWithExamples per request. `scan` has the same
  /// provenance contract as ExplainPreparedWithScan.
  Result<EncodedDataset> BuildEncodedExamplesFromScan(
      const Query& bound_query, const RelatedPairScan& scan,
      std::size_t poi_first, std::size_t poi_second,
      const ExplainerOptions& options) const;

  /// The clause-generation tail of ExplainPreparedWithScan over an
  /// already-built encoded training matrix. `examples` must come from
  /// BuildEncodedExamplesFromScan for the same bound query (any width).
  /// ExplainPreparedWithScan == BuildEncodedExamplesFromScan +
  /// ExplainPreparedWithExamples, bitwise.
  Result<Explanation> ExplainPreparedWithExamples(
      const Query& bound, const EncodedDataset& examples,
      const ExplainerOptions& options) const;
  Result<Predicate> GenerateDespitePrepared(
      const Query& bound, std::size_t poi_first, std::size_t poi_second,
      std::size_t width, const ExplainerOptions& options) const;
  Result<Explanation> ExplainWithAutoDespitePrepared(
      const Query& bound, std::size_t poi_first, std::size_t poi_second,
      const ExplainerOptions& options) const;

  /// Lower-level entry point used by the experiments: generates one clause
  /// from already-materialized training examples. The first example must be
  /// the pair of interest. `target_expected` selects des' mode (optimize
  /// relevance) versus bec mode (optimize precision). Atoms appearing
  /// verbatim in `redundant_atoms` (the query's despite clause, which every
  /// related pair satisfies) are never proposed.
  std::vector<ExplanationAtom> GenerateClause(
      std::vector<TrainingExample> examples, std::size_t width,
      bool target_expected, const std::vector<std::size_t>& excluded_raw,
      const std::vector<Atom>& redundant_atoms = {}) const;

  /// Raw-feature indexes mentioned by the query's observed/expected clauses
  /// (excluded from candidate explanation features).
  std::vector<std::size_t> ExcludedRawFeatures(const Query& bound_query)
      const;

  /// Builds (and balanced-samples) the training examples for `bound_query`
  /// with the pair of interest first. Exposed for experiments.
  Result<std::vector<TrainingExample>> BuildExamples(
      const Query& bound_query, std::size_t poi_first,
      std::size_t poi_second) const;

  /// Columnar fast path of BuildExamples: the same sampled pairs (same Rng
  /// draw sequence) encoded into an integer training matrix, never
  /// materializing a Value. Explain/GenerateDespite/ExplainWithAutoDespite
  /// run on this; the Value-based entry points above remain as a
  /// compatibility layer.
  Result<EncodedDataset> BuildEncodedExamples(const Query& bound_query,
                                              std::size_t poi_first,
                                              std::size_t poi_second) const;

  /// GenerateClause over the encoded training matrix — the engine behind
  /// Explain. Produces the same clause as the Value-based overload for the
  /// same underlying examples.
  std::vector<ExplanationAtom> GenerateClause(
      const EncodedDataset& examples, std::size_t width, bool target_expected,
      const std::vector<std::size_t>& excluded_raw,
      const std::vector<Atom>& redundant_atoms = {}) const;

  /// The dictionary-encoded copy of the log shared by all queries.
  const ColumnarLog& columnar() const { return *columnar_; }

 private:
  static Predicate ClauseToPredicate(
      const std::vector<ExplanationAtom>& trace);

  /// BuildEncodedExamples under explicit options (seed / threads / sampling
  /// come from `options`, not the constructor's).
  Result<EncodedDataset> BuildEncodedExamplesWith(
      const Query& bound_query, std::size_t poi_first, std::size_t poi_second,
      const ExplainerOptions& options) const;

  const ExecutionLog* log_;
  ExplainerOptions options_;
  PairSchema schema_;
  std::unique_ptr<ColumnarLog> owned_columnar_;
  const ColumnarLog* columnar_;
};

/// Definition 1 check on the compiled programs: des and obs must hold for
/// the pair of interest, exp must not. Shared by Explainer::PrepareQuery
/// and Engine::Prepare so both report identical statuses.
Status CheckDefinition1(const CompiledQuery& compiled, std::size_t first,
                        std::size_t second, double sim_fraction);

}  // namespace perfxplain

#endif  // PERFXPLAIN_CORE_EXPLAINER_H_
