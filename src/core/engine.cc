#include "core/engine.h"

#include <atomic>
#include <chrono>
#include <utility>

#include "pxql/parser.h"

namespace perfxplain {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Serializes every result-affecting field of `options` (per technique;
/// the technique itself is a separate key segment). Thread counts and
/// memory budgets (pair_code_budget_bytes, limits) are deliberately
/// omitted: they move work, never results — the bitwise-equivalence
/// suites pin that — so a result computed under one serves all.
std::string OptionsFingerprint(const EngineOptions& options) {
  const ExplainerOptions& px = options.explainer;
  const RuleOfThumbOptions& rot = options.rule_of_thumb;
  const SimButDiffOptions& sbd = options.sim_but_diff;
  std::string fp;
  fp += std::to_string(px.width) + ",";
  fp += std::to_string(px.precision_weight) + ",";
  fp += std::to_string(px.sampler.sample_size) + ",";
  fp += std::to_string(px.pair.sim_fraction) + ",";
  fp += std::to_string(static_cast<int>(px.level)) + ",";
  fp += std::to_string(px.despite_width) + ",";
  fp += std::to_string(px.despite_relevance_threshold) + ",";
  fp += std::to_string(px.max_pairs_per_record) + ",";
  fp += std::to_string(px.normalize_scores) + ",";
  fp += std::to_string(px.balanced_sampling) + ",";
  fp += std::to_string(px.seed) + ";";
  fp += std::to_string(rot.relief.iterations) + ",";
  fp += std::to_string(rot.relief.neighbors) + ",";
  fp += std::to_string(rot.pair.sim_fraction) + ",";
  fp += std::to_string(rot.seed) + ";";
  fp += std::to_string(sbd.similarity_threshold) + ",";
  fp += std::to_string(sbd.pair.sim_fraction);
  return fp;
}

}  // namespace

namespace {
std::atomic<std::uint64_t> g_next_snapshot_id{1};
}  // namespace

std::uint64_t LogSnapshot::NextId() {
  return g_next_snapshot_id.fetch_add(1, std::memory_order_relaxed);
}

void LogSnapshot::EnsureNextIdAfter(std::uint64_t id) {
  std::uint64_t current = g_next_snapshot_id.load(std::memory_order_relaxed);
  while (current <= id &&
         !g_next_snapshot_id.compare_exchange_weak(
             current, id + 1, std::memory_order_relaxed)) {
    // current reloaded by the failed CAS; loop until someone (us or a
    // concurrent caller) has pushed the counter past `id`.
  }
}

const char* TechniqueToString(Technique technique) {
  switch (technique) {
    case Technique::kPerfXplain:
      return "PerfXplain";
    case Technique::kRuleOfThumb:
      return "RuleOfThumb";
    case Technique::kSimButDiff:
      return "SimButDiff";
  }
  return "?";
}

Engine::Engine(ExecutionLog log, EngineOptions options)
    : Engine(std::make_shared<const LogSnapshot>(std::move(log)),
             std::move(options)) {}

Engine::Engine(std::shared_ptr<const LogSnapshot> snapshot,
               EngineOptions options)
    : snapshot_(std::move(snapshot)), options_(std::move(options)) {
  PX_CHECK(snapshot_ != nullptr);
  options_fingerprint_ = OptionsFingerprint(options_);
  if (options_.result_cache != nullptr) {
    result_cache_ = options_.result_cache;
  } else if (options_.result_cache_bytes > 0) {
    result_cache_ = std::make_shared<ResultCache>(options_.result_cache_bytes);
  }
  // Every technique scans the snapshot's one columnar replica; SimButDiff
  // additionally borrows the snapshot's pair-code store so sequential
  // queries run on resident packed codes.
  explainer_ = std::make_unique<Explainer>(
      &snapshot_->log(), options_.explainer, &snapshot_->columns());
  sim_but_diff_ = std::make_unique<SimButDiff>(
      &snapshot_->log(), options_.sim_but_diff, &snapshot_->columns(),
      &snapshot_->pair_codes());
}

const RuleOfThumb& Engine::rule_of_thumb() const {
  std::call_once(rule_of_thumb_once_, [this] {
    rule_of_thumb_ = std::make_unique<RuleOfThumb>(
        &snapshot_->log(), options_.rule_of_thumb, &snapshot_->columns());
  });
  return *rule_of_thumb_;
}

Result<PreparedQuery> Engine::Prepare(const Query& query) const {
  PreparedQuery prepared;
  prepared.snapshot_ = snapshot_;
  prepared.bound_ = query;
  Query& bound = prepared.bound_;
  PX_RETURN_IF_ERROR(bound.Bind(snapshot_->pair_schema()));
  PX_RETURN_IF_ERROR(bound.Validate());
  if (bound.first_id.empty() || bound.second_id.empty()) {
    return Status::InvalidArgument(
        "query must identify the pair of interest (FOR ... WHERE)");
  }
  auto first = snapshot_->log().Find(bound.first_id);
  if (!first.ok()) return first.status();
  auto second = snapshot_->log().Find(bound.second_id);
  if (!second.ok()) return second.status();
  prepared.poi_first_ = first.value();
  prepared.poi_second_ = second.value();
  prepared.compiled_ = CompiledQuery::Compile(
      bound, snapshot_->pair_schema(), snapshot_->columns());
  prepared.definition1_ =
      CheckDefinition1(prepared.compiled_, prepared.poi_first_,
                       prepared.poi_second_,
                       options_.explainer.pair.sim_fraction);
  return prepared;
}

Result<PreparedQuery> Engine::PrepareText(const std::string& pxql) const {
  auto query = ParseQuery(pxql);
  if (!query.ok()) return query.status();
  return Prepare(query.value());
}

Status Engine::Definition1(const PreparedQuery& prepared) const {
  // Re-derived under THIS engine's similarity fraction rather than read
  // from the recorded status: engines sharing a snapshot may run different
  // options, and the check costs three program evaluations on one pair.
  return CheckDefinition1(prepared.compiled(), prepared.poi_first(),
                          prepared.poi_second(),
                          options_.explainer.pair.sim_fraction);
}

ExplainerOptions Engine::ExplainerOptionsFor(
    const ExplainRequest& request) const {
  ExplainerOptions options = options_.explainer;
  if (request.width > 0) options.width = request.width;
  if (request.seed.has_value()) options.seed = *request.seed;
  if (request.threads.has_value()) options.threads = *request.threads;
  return options;
}

Status Engine::AttachEvaluation(const PreparedQuery& prepared,
                                const ExplainRequest& request,
                                ExplainResponse* response) const {
  if (!request.evaluate) return Status::OK();
  const Clock::time_point start = Clock::now();
  auto metrics = Evaluate(prepared, response->explanation);
  if (!metrics.ok()) return metrics.status();
  response->metrics = metrics.value();
  response->evaluate_ms = MsSince(start);
  return Status::OK();
}

Result<Explanation> Engine::Generate(const PreparedQuery& prepared,
                                     const ExplainRequest& request) const {
  const std::size_t width =
      request.width > 0 ? request.width : options_.explainer.width;
  switch (request.technique) {
    case Technique::kPerfXplain: {
      PX_RETURN_IF_ERROR(Definition1(prepared));
      const ExplainerOptions explainer_options = ExplainerOptionsFor(request);
      if (request.auto_despite) {
        return explainer_->ExplainWithAutoDespitePrepared(
            prepared.bound(), prepared.poi_first(), prepared.poi_second(),
            explainer_options);
      }
      return explainer_->ExplainPrepared(prepared.bound(),
                                         prepared.poi_first(),
                                         prepared.poi_second(),
                                         explainer_options);
    }
    case Technique::kRuleOfThumb:
      return rule_of_thumb().ExplainPrepared(prepared.bound(),
                                             prepared.poi_first(),
                                             prepared.poi_second(), width);
    case Technique::kSimButDiff:
      return sim_but_diff_->ExplainPrepared(
          prepared.bound(), prepared.compiled(), prepared.poi_first(),
          prepared.poi_second(), width,
          request.threads.value_or(options_.sim_but_diff.threads));
  }
  return Status::InvalidArgument("unknown technique");
}

std::string Engine::CacheKeyFor(const PreparedQuery& prepared,
                                const ExplainRequest& request) const {
  const std::size_t width =
      request.width > 0 ? request.width : options_.explainer.width;
  const std::uint64_t seed =
      request.seed.value_or(options_.explainer.seed);
  std::string key = ResultCache::SnapshotPrefix(snapshot_->id());
  key += options_fingerprint_;
  key += "|";
  key += TechniqueToString(request.technique);
  key += "|";
  key += std::to_string(width);
  key += "|";
  key += request.auto_despite ? "d1" : "d0";
  key += request.evaluate ? "e1" : "e0";
  key += "|";
  key += std::to_string(seed);
  key += "|";
  key += std::to_string(prepared.poi_first());
  key += ",";
  key += std::to_string(prepared.poi_second());
  key += "|";
  key += prepared.bound().ToString();
  return key;
}

Status Engine::CheckPrepared(const PreparedQuery& prepared) const {
  if (prepared.snapshot_ != snapshot_) {
    return Status::InvalidArgument(
        "PreparedQuery was not prepared against this engine's snapshot");
  }
  return Status::OK();
}

Status Engine::AdmitRequest(const ExplainRequest& request) const {
  const EngineLimits& limits = options_.limits;
  const std::size_t n = snapshot_->log().size();
  if (limits.max_candidate_pairs > 0) {
    const std::size_t pairs = n > 1 ? n * (n - 1) : 0;
    if (pairs > limits.max_candidate_pairs) {
      return Status::ResourceExhausted(
          "request rejected: estimated " + std::to_string(pairs) +
          " candidate ordered pairs exceeds max_candidate_pairs = " +
          std::to_string(limits.max_candidate_pairs));
    }
  }
  if (limits.max_pair_store_bytes > 0 &&
      request.technique == Technique::kSimButDiff) {
    // Charged per-frame: the plane when the engine's budget lets it
    // build, otherwise the tile-pool frames the budget buys; a request
    // that streams outright costs no store bytes.
    const std::size_t bytes = snapshot_->pair_codes().ResidentBytesFor(
        options_.sim_but_diff.pair_code_budget_bytes);
    if (bytes > limits.max_pair_store_bytes) {
      return Status::ResourceExhausted(
          "request rejected: estimated resident pair-store bytes of " +
          std::to_string(bytes) + " exceeds max_pair_store_bytes = " +
          std::to_string(limits.max_pair_store_bytes));
    }
  }
  if (limits.max_training_cells > 0 &&
      request.technique == Technique::kPerfXplain) {
    const std::size_t cells =
        (options_.explainer.sampler.sample_size + 1) *
        snapshot_->pair_schema().size();
    if (cells > limits.max_training_cells) {
      return Status::ResourceExhausted(
          "request rejected: estimated training matrix of " +
          std::to_string(cells) + " cells exceeds max_training_cells = " +
          std::to_string(limits.max_training_cells));
    }
  }
  return Status::OK();
}

ExecContext Engine::MakeExecContext(const ExplainRequest& request) const {
  ExecContext context;
  context.cancel = request.cancel;
  if (request.deadline_ms > 0) {
    context.deadline =
        Clock::now() + std::chrono::milliseconds(request.deadline_ms);
  }
  return context;
}

Result<ExplainResponse> Engine::Explain(const PreparedQuery& prepared,
                                        const ExplainRequest& request) const {
  PX_RETURN_IF_ERROR(CheckPrepared(prepared));
  PX_RETURN_IF_ERROR(AdmitRequest(request));
  // The cache is consulted before any scan; a hit is a finished response
  // (only complete, successful ones are ever inserted) whose explain_ms
  // is the lookup itself.
  std::string cache_key;
  if (result_cache_ != nullptr) {
    const Clock::time_point lookup_start = Clock::now();
    cache_key = CacheKeyFor(prepared, request);
    if (auto cached = result_cache_->Get(cache_key); cached.has_value()) {
      ExplainResponse response;
      response.technique = request.technique;
      response.snapshot_id = snapshot_->id();
      response.explanation = std::move(cached->explanation);
      response.metrics = std::move(cached->metrics);
      response.explain_ms = MsSince(lookup_start);
      response.result_cache_hit = true;
      return response;
    }
  }
  const ExecContext exec_context = MakeExecContext(request);
  ScopedExecContext scoped(exec_context.empty() ? nullptr : &exec_context);
  try {
    const PairCodeStore& store = snapshot_->pair_codes();
    const bool sim_but_diff = request.technique == Technique::kSimButDiff;
    const std::uint64_t builds_before =
        sim_but_diff ? store.build_count() : 0;
    const std::uint64_t tile_hits_before =
        sim_but_diff ? store.tile_hits() : 0;
    const std::uint64_t tile_misses_before =
        sim_but_diff ? store.tile_misses() : 0;
    const std::uint64_t tile_evictions_before =
        sim_but_diff ? store.tile_evictions() : 0;
    const Clock::time_point start = Clock::now();
    auto explanation = Generate(prepared, request);
    if (!explanation.ok()) return explanation.status();
    ExplainResponse response;
    response.technique = request.technique;
    response.snapshot_id = snapshot_->id();
    response.explanation = std::move(explanation).value();
    response.explain_ms = MsSince(start);
    if (sim_but_diff) {
      response.pair_store_built = store.build_count() > builds_before;
      response.pair_store_hit =
          store.bytes_per_plane() <=
              options_.sim_but_diff.pair_code_budget_bytes &&
          store.warm(options_.sim_but_diff.pair.sim_fraction);
      response.tile_hits = store.tile_hits() - tile_hits_before;
      response.tile_misses = store.tile_misses() - tile_misses_before;
      response.tile_evictions = store.tile_evictions() - tile_evictions_before;
    }
    PX_RETURN_IF_ERROR(AttachEvaluation(prepared, request, &response));
    // Only a fully successful response reaches this Put: every failure —
    // including a cancel or deadline firing mid-scan — returned above,
    // so a partial result is never cached.
    if (result_cache_ != nullptr) {
      result_cache_->Put(cache_key,
                         ResultCache::Value{response.explanation,
                                            response.metrics});
    }
    return response;
  } catch (const InterruptedError& interrupted) {
    // A checkpoint fired mid-scan (or mid-build): every worker has joined
    // and any partially built store plane was rolled back, so the shared
    // snapshot keeps serving untouched.
    return interrupted.status();
  }
}

std::vector<Result<ExplainResponse>> Engine::ExplainBatch(
    const std::vector<BatchItem>& items) const {
  std::vector<Result<ExplainResponse>> responses;
  responses.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    responses.push_back(Status::Internal("batch item not answered"));
  }
  // Items answered by a shared scan; everything else runs through the
  // per-call path at the bottom.
  std::vector<bool> handled(items.size(), false);
  // Cache keys of the items consulted below, kept so the shared-scan
  // paths can Put their finished responses (empty = not consulted here;
  // the per-call path lets Explain handle its own caching).
  std::vector<std::string> cache_keys(items.size());

  // The batch's SimButDiff requests share one ordered-pair scan.
  std::vector<std::size_t> batched;
  std::vector<SimButDiff::PreparedBatchQuery> queries;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const BatchItem& item = items[i];
    if (item.prepared == nullptr) {
      responses[i] = Status::InvalidArgument("batch item has no query");
      handled[i] = true;
      continue;
    }
    if (Status prepared_status = CheckPrepared(*item.prepared);
        !prepared_status.ok()) {
      responses[i] = prepared_status;
      handled[i] = true;
      continue;
    }
    if (Status admitted = AdmitRequest(item.request); !admitted.ok()) {
      responses[i] = admitted;
      handled[i] = true;
      continue;
    }
    // Cached items leave the batch before routing, so a hit is answered
    // without joining (or triggering) any shared scan. Deadline/cancel
    // items run per-call anyway; Explain consults the cache for them.
    if (result_cache_ != nullptr && item.request.deadline_ms == 0 &&
        item.request.cancel == nullptr) {
      const Clock::time_point lookup_start = Clock::now();
      cache_keys[i] = CacheKeyFor(*item.prepared, item.request);
      if (auto cached = result_cache_->Get(cache_keys[i]);
          cached.has_value()) {
        ExplainResponse response;
        response.technique = item.request.technique;
        response.snapshot_id = snapshot_->id();
        response.explanation = std::move(cached->explanation);
        response.metrics = std::move(cached->metrics);
        response.explain_ms = MsSince(lookup_start);
        response.result_cache_hit = true;
        responses[i] = std::move(response);
        handled[i] = true;
        continue;
      }
    }
    if (item.request.technique != Technique::kSimButDiff) continue;
    // Requests carrying a deadline or CancelToken run per-call (through
    // Explain, which installs their ExecContext); a shared scan has no
    // single request whose interruption state could govern it.
    if (item.request.deadline_ms > 0 || item.request.cancel != nullptr) {
      continue;
    }
    SimButDiff::PreparedBatchQuery query;
    query.bound = &item.prepared->bound();
    query.compiled = &item.prepared->compiled();
    query.poi_first = item.prepared->poi_first();
    query.poi_second = item.prepared->poi_second();
    query.width = item.request.width > 0 ? item.request.width
                                         : options_.explainer.width;
    batched.push_back(i);
    queries.push_back(query);
  }

  // Below this many SimButDiff requests, a batch whose snapshot store is
  // already warm (resident plane built, within this engine's budget) runs
  // its items per-call instead of through the shared scan: with packing
  // already amortized by the store, the batch machinery's per-group
  // bookkeeping outweighs the one scan it saves (0.89x at 4 queries —
  // the ROADMAP regression this routing closes). Outputs are unchanged
  // either way — the batch-vs-per-call suites pin the two paths bitwise —
  // only `batched`/`explain_ms` reflect the actual route. Cold stores
  // keep the shared scan at any size: its single pass also covers the
  // plane's one-time build.
  constexpr std::size_t kSmallWarmBatchCutoff = 6;
  const bool warm_resident_store =
      snapshot_->pair_codes().bytes_per_plane() <=
          options_.sim_but_diff.pair_code_budget_bytes &&
      snapshot_->pair_codes().warm(options_.sim_but_diff.pair.sim_fraction);
  const bool route_small_warm_batch_per_call =
      warm_resident_store && batched.size() < kSmallWarmBatchCutoff;

  if (batched.size() > 1 && !route_small_warm_batch_per_call) {
    const PairCodeStore& store = snapshot_->pair_codes();
    const std::uint64_t builds_before = store.build_count();
    const std::uint64_t tile_hits_before = store.tile_hits();
    const std::uint64_t tile_misses_before = store.tile_misses();
    const std::uint64_t tile_evictions_before = store.tile_evictions();
    const Clock::time_point start = Clock::now();
    std::vector<Result<Explanation>> results =
        sim_but_diff_->ExplainBatch(queries, options_.sim_but_diff.threads);
    const double amortized_ms =
        MsSince(start) / static_cast<double>(batched.size());
    const bool store_built = store.build_count() > builds_before;
    const bool store_hit =
        store.bytes_per_plane() <=
            options_.sim_but_diff.pair_code_budget_bytes &&
        store.warm(options_.sim_but_diff.pair.sim_fraction);
    // The scan's tile traffic is shared, not attributable per item: every
    // batched response reports the whole batch's deltas.
    const std::uint64_t tile_hits = store.tile_hits() - tile_hits_before;
    const std::uint64_t tile_misses =
        store.tile_misses() - tile_misses_before;
    const std::uint64_t tile_evictions =
        store.tile_evictions() - tile_evictions_before;
    for (std::size_t b = 0; b < batched.size(); ++b) {
      const std::size_t i = batched[b];
      handled[i] = true;
      if (!results[b].ok()) {
        responses[i] = results[b].status();
        continue;
      }
      ExplainResponse response;
      response.technique = Technique::kSimButDiff;
      response.snapshot_id = snapshot_->id();
      response.explanation = std::move(results[b]).value();
      response.explain_ms = amortized_ms;
      response.batched = true;
      response.pair_store_built = store_built;
      response.pair_store_hit = store_hit;
      response.tile_hits = tile_hits;
      response.tile_misses = tile_misses;
      response.tile_evictions = tile_evictions;
      if (Status evaluated = AttachEvaluation(*items[i].prepared,
                                              items[i].request, &response);
          !evaluated.ok()) {
        responses[i] = evaluated;
        continue;
      }
      if (result_cache_ != nullptr && !cache_keys[i].empty()) {
        result_cache_->Put(cache_keys[i],
                           ResultCache::Value{response.explanation,
                                              response.metrics});
      }
      responses[i] = std::move(response);
    }
  }

  // The batch's PerfXplain requests of one query shape (structurally
  // identical bound predicates; Definition 1 holding, since the per-call
  // path fails those before scanning; no auto-despite, which rewrites the
  // shape mid-flight) share one related-pair classification scan. Each
  // request then pays only its serial sampling replay, encoding and
  // clause generation — bitwise identical to per-call Explain because the
  // counting scan never depends on the pair of interest or the seed.
  std::vector<std::vector<std::size_t>> px_groups;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const BatchItem& item = items[i];
    if (handled[i] || item.prepared == nullptr) continue;
    if (item.request.technique != Technique::kPerfXplain) continue;
    if (item.request.auto_despite) continue;
    // Deadline/cancel-carrying requests run per-call (see above).
    if (item.request.deadline_ms > 0 || item.request.cancel != nullptr) {
      continue;
    }
    if (!Definition1(*item.prepared).ok()) continue;  // per-call status
    const Query& bound = item.prepared->bound();
    std::size_t g = 0;
    for (; g < px_groups.size(); ++g) {
      const Query& seen = items[px_groups[g].front()].prepared->bound();
      if (seen.despite == bound.despite && seen.observed == bound.observed &&
          seen.expected == bound.expected) {
        break;
      }
    }
    if (g == px_groups.size()) px_groups.emplace_back();
    px_groups[g].push_back(i);
  }
  for (const std::vector<std::size_t>& group : px_groups) {
    // A lone request gains nothing from the shared scan.
    if (group.size() < 2) continue;
    const PreparedQuery& representative = *items[group.front()].prepared;
    const Clock::time_point scan_start = Clock::now();
    const RelatedPairScan scan = ScanRelatedPairs(
        snapshot_->columns(), representative.compiled(),
        options_.explainer.pair.sim_fraction,
        EnumerationOptions{options_.explainer.threads});
    // Overflowed scans carry no replayable pair list; the group falls
    // back to per-call execution (each call streams its own draws).
    if (scan.overflowed) continue;
    const double scan_share_ms =
        MsSince(scan_start) / static_cast<double>(group.size());
    // Second amortization seam (the former ROADMAP carried item): within a
    // shape group, the encoded training matrix depends only on (scan,
    // effective seed, pair of interest) — the sampler settings, diversity
    // cap, balanced flag and sim_fraction are engine-fixed, and
    // per-request overrides touch only width/seed/threads. Requests
    // agreeing on (seed, poi) therefore replay identical sampling draws
    // and encode the identical matrix; build it once per sub-group and
    // run only the width-dependent clause generation per request.
    std::vector<std::vector<std::size_t>> matrix_groups;
    for (std::size_t i : group) {
      const BatchItem& item = items[i];
      const std::uint64_t seed =
          item.request.seed.value_or(options_.explainer.seed);
      std::size_t m = 0;
      for (; m < matrix_groups.size(); ++m) {
        const BatchItem& seen = items[matrix_groups[m].front()];
        const std::uint64_t seen_seed =
            seen.request.seed.value_or(options_.explainer.seed);
        if (seen_seed == seed &&
            seen.prepared->poi_first() == item.prepared->poi_first() &&
            seen.prepared->poi_second() == item.prepared->poi_second()) {
          break;
        }
      }
      if (m == matrix_groups.size()) matrix_groups.emplace_back();
      matrix_groups[m].push_back(i);
    }
    for (const std::vector<std::size_t>& matrix_group : matrix_groups) {
      const BatchItem& lead = items[matrix_group.front()];
      const Clock::time_point sample_start = Clock::now();
      auto examples = explainer_->BuildEncodedExamplesFromScan(
          lead.prepared->bound(), scan, lead.prepared->poi_first(),
          lead.prepared->poi_second(), ExplainerOptionsFor(lead.request));
      const double sample_share_ms =
          MsSince(sample_start) / static_cast<double>(matrix_group.size());
      for (std::size_t i : matrix_group) {
        const BatchItem& item = items[i];
        handled[i] = true;
        if (!examples.ok()) {
          responses[i] = examples.status();
          continue;
        }
        const ExplainerOptions explainer_options =
            ExplainerOptionsFor(item.request);
        const Clock::time_point start = Clock::now();
        auto explanation = explainer_->ExplainPreparedWithExamples(
            item.prepared->bound(), examples.value(), explainer_options);
        if (!explanation.ok()) {
          responses[i] = explanation.status();
          continue;
        }
        ExplainResponse response;
        response.technique = Technique::kPerfXplain;
        response.snapshot_id = snapshot_->id();
        response.explanation = std::move(explanation).value();
        response.explain_ms = scan_share_ms + sample_share_ms + MsSince(start);
        response.batched = true;
        if (Status evaluated = AttachEvaluation(*item.prepared, item.request,
                                                &response);
            !evaluated.ok()) {
          responses[i] = evaluated;
          continue;
        }
        if (result_cache_ != nullptr && !cache_keys[i].empty()) {
          result_cache_->Put(cache_keys[i],
                             ResultCache::Value{response.explanation,
                                                response.metrics});
        }
        responses[i] = std::move(response);
      }
    }
  }

  for (std::size_t i = 0; i < items.size(); ++i) {
    if (handled[i]) continue;
    // Explain consults and fills the cache itself for these (the second
    // lookup of an item already missed above is a second recorded miss —
    // the stats are informational, not load-bearing).
    responses[i] = Explain(*items[i].prepared, items[i].request);
  }
  return responses;
}

Result<Predicate> Engine::GenerateDespite(const PreparedQuery& prepared,
                                          std::size_t width) const {
  PX_RETURN_IF_ERROR(CheckPrepared(prepared));
  PX_RETURN_IF_ERROR(Definition1(prepared));
  return explainer_->GenerateDespitePrepared(
      prepared.bound(), prepared.poi_first(), prepared.poi_second(),
      width > 0 ? width : options_.explainer.despite_width,
      options_.explainer);
}

Result<ExplanationMetrics> Engine::Evaluate(
    const PreparedQuery& prepared, const Explanation& explanation) const {
  PX_RETURN_IF_ERROR(CheckPrepared(prepared));
  return EvaluateOn(snapshot_->log(), prepared.bound(), explanation);
}

Result<ExplanationMetrics> Engine::EvaluateOn(
    const ExecutionLog& test_log, const Query& query,
    const Explanation& explanation) const {
  if (!(test_log.schema() == snapshot_->log().schema())) {
    return Status::InvalidArgument("test log schema differs from training");
  }
  Query bound = query;
  PX_RETURN_IF_ERROR(bound.Bind(snapshot_->pair_schema()));
  Explanation bound_explanation = explanation;
  PX_RETURN_IF_ERROR(
      bound_explanation.despite.Bind(snapshot_->pair_schema()));
  PX_RETURN_IF_ERROR(
      bound_explanation.because.Bind(snapshot_->pair_schema()));
  return EvaluateExplanation(test_log, snapshot_->pair_schema(), bound,
                             bound_explanation, options_.explainer.pair);
}

}  // namespace perfxplain
