#include "core/rule_of_thumb.h"

#include "features/pair_features.h"
#include "log/catalog.h"

namespace perfxplain {

RuleOfThumb::RuleOfThumb(const ExecutionLog* log, RuleOfThumbOptions options)
    : log_(log), options_(options), schema_(log->schema()) {
  PX_CHECK(log != nullptr);
  const std::size_t target = log_->schema().IndexOf(feature_names::kDuration);
  PX_CHECK_NE(target, Schema::kNotFound)
      << "log schema lacks a duration feature";
  Rng rng(options_.seed);
  ranking_ =
      RankFeaturesByImportance(*log_, target, options_.relief, rng);
}

Result<Explanation> RuleOfThumb::Explain(const Query& query,
                                         std::size_t width) const {
  Query bound = query;
  PX_RETURN_IF_ERROR(bound.Bind(schema_));
  auto first = log_->Find(bound.first_id);
  if (!first.ok()) return first.status();
  auto second = log_->Find(bound.second_id);
  if (!second.ok()) return second.status();
  PairFeatureView view(&schema_, &log_->at(first.value()),
                       &log_->at(second.value()), &options_.pair);

  // Raw features the query's obs/exp mention (the runtime metric) never
  // belong in an explanation.
  std::vector<bool> excluded(schema_.raw_size(), false);
  for (const Predicate* predicate : {&bound.observed, &bound.expected}) {
    for (const Atom& atom : predicate->atoms()) {
      excluded[schema_.RawIndexOf(atom.pair_index())] = true;
    }
  }

  Explanation explanation;
  for (std::size_t raw : ranking_) {
    if (explanation.because.width() >= width) break;
    if (excluded[raw]) continue;
    const std::size_t is_same =
        schema_.IndexOf(PairFeatureKind::kIsSame, raw);
    const Value value = view.Get(is_same);
    // Explain with the top-ranked features the two executions disagree on.
    if (value == Value::Nominal(pair_values::kFalse)) {
      ExplanationAtom atom;
      atom.atom = Atom::Bound(schema_, is_same, CompareOp::kEq,
                              Value::Nominal(pair_values::kFalse));
      explanation.because.Append(atom.atom);
      explanation.because_trace.push_back(std::move(atom));
    }
  }
  if (explanation.because.is_true()) {
    return Status::FailedPrecondition(
        "the pair of interest agrees on every important feature; "
        "RuleOfThumb has no explanation");
  }
  return explanation;
}

}  // namespace perfxplain
