#include "core/rule_of_thumb.h"

#include "features/pair_feature_kernel.h"
#include "features/pair_features.h"
#include "log/catalog.h"

namespace perfxplain {

namespace {

Result<Explanation> FinishExplanation(Explanation explanation) {
  if (explanation.because.is_true()) {
    return Status::FailedPrecondition(
        "the pair of interest agrees on every important feature; "
        "RuleOfThumb has no explanation");
  }
  return explanation;
}

}  // namespace

RuleOfThumb::RuleOfThumb(const ExecutionLog* log, RuleOfThumbOptions options,
                         const ColumnarLog* columns)
    : log_(log), options_(options), schema_(log->schema()) {
  PX_CHECK(log != nullptr);
  if (columns == nullptr) {
    owned_columns_ = std::make_unique<ColumnarLog>(*log);
    columns_ = owned_columns_.get();
  } else {
    columns_ = columns;
  }
  const std::size_t target = log_->schema().IndexOf(feature_names::kDuration);
  PX_CHECK_NE(target, Schema::kNotFound)
      << "log schema lacks a duration feature";
  Rng rng(options_.seed);
  ranking_ =
      RankFeaturesByImportance(*columns_, target, options_.relief, rng);
}

Result<std::pair<std::size_t, std::size_t>> RuleOfThumb::ResolvePair(
    Query& bound) const {
  PX_RETURN_IF_ERROR(bound.Bind(schema_));
  auto first = log_->Find(bound.first_id);
  if (!first.ok()) return first.status();
  auto second = log_->Find(bound.second_id);
  if (!second.ok()) return second.status();
  return std::make_pair(first.value(), second.value());
}

Result<Explanation> RuleOfThumb::Explain(const Query& query,
                                         std::size_t width) const {
  Query bound = query;
  auto poi = ResolvePair(bound);
  if (!poi.ok()) return poi.status();
  return ExplainPrepared(bound, poi->first, poi->second, width);
}

Result<Explanation> RuleOfThumb::ExplainPrepared(const Query& bound,
                                                 std::size_t poi_first,
                                                 std::size_t poi_second,
                                                 std::size_t width) const {
  const std::vector<bool> excluded = OutcomeRawFeatureMask(bound, schema_);
  const double sim = options_.pair.sim_fraction;

  Explanation explanation;
  for (std::size_t raw : ranking_) {
    if (explanation.because.width() >= width) break;
    if (excluded[raw]) continue;
    // Explain with the top-ranked features the two executions disagree on.
    if (kernel::IsSameCode(*columns_, raw, poi_first, poi_second, sim) !=
        kernel::kFalseCode) {
      continue;
    }
    const std::size_t is_same = schema_.IndexOf(PairFeatureKind::kIsSame, raw);
    ExplanationAtom atom;
    atom.atom = Atom::Bound(schema_, is_same, CompareOp::kEq,
                            pair_values::FalseValue());
    explanation.because.Append(atom.atom);
    explanation.because_trace.push_back(std::move(atom));
  }
  return FinishExplanation(std::move(explanation));
}

Result<Explanation> RuleOfThumb::ExplainLegacy(const Query& query,
                                               std::size_t width) const {
  Query bound = query;
  auto poi = ResolvePair(bound);
  if (!poi.ok()) return poi.status();
  PairFeatureView view(&schema_, &log_->at(poi->first),
                       &log_->at(poi->second), &options_.pair);

  const std::vector<bool> excluded = OutcomeRawFeatureMask(bound, schema_);

  Explanation explanation;
  for (std::size_t raw : ranking_) {
    if (explanation.because.width() >= width) break;
    if (excluded[raw]) continue;
    const std::size_t is_same =
        schema_.IndexOf(PairFeatureKind::kIsSame, raw);
    const Value value = view.Get(is_same);
    if (value == Value::Nominal(pair_values::kFalse)) {
      ExplanationAtom atom;
      atom.atom = Atom::Bound(schema_, is_same, CompareOp::kEq,
                              Value::Nominal(pair_values::kFalse));
      explanation.because.Append(atom.atom);
      explanation.because_trace.push_back(std::move(atom));
    }
  }
  return FinishExplanation(std::move(explanation));
}

}  // namespace perfxplain
