#include "core/explanation.h"

namespace perfxplain {

std::string Explanation::ToString() const {
  std::string out;
  if (!despite.is_true()) {
    out += "DESPITE " + despite.ToString() + "\n";
  }
  out += "BECAUSE " + because.ToString();
  return out;
}

}  // namespace perfxplain
