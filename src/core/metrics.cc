#include "core/metrics.h"

namespace perfxplain {

ExplanationMetrics EvaluateExplanation(const ExecutionLog& log,
                                       const PairSchema& schema,
                                       const Query& bound_query,
                                       const Explanation& explanation,
                                       const PairFeatureOptions& options) {
  // Per §4.2 of the paper, all three probabilities are measured over the
  // pairs *related* to the query — those satisfying des AND (obs OR exp)
  // (Definition 7). Pairs exhibiting some third behavior (neither observed
  // nor expected) are not part of the population.
  ExplanationMetrics metrics;
  ForEachOrderedPair(
      log, schema, options,
      [&](std::size_t, std::size_t, const PairFeatureView& view) {
        const PairLabel label = ClassifyPair(bound_query, view);
        if (label == PairLabel::kUnrelated) return true;
        if (!explanation.despite.Eval(view)) return true;
        ++metrics.pairs_despite;
        if (label == PairLabel::kExpected) ++metrics.pairs_despite_exp;
        if (explanation.because.Eval(view)) {
          ++metrics.pairs_because;
          if (label == PairLabel::kObserved) ++metrics.pairs_because_obs;
        }
        return true;
      });
  if (metrics.pairs_despite > 0) {
    metrics.relevance = static_cast<double>(metrics.pairs_despite_exp) /
                        static_cast<double>(metrics.pairs_despite);
    metrics.generality = static_cast<double>(metrics.pairs_because) /
                         static_cast<double>(metrics.pairs_despite);
  }
  if (metrics.pairs_because > 0) {
    metrics.precision = static_cast<double>(metrics.pairs_because_obs) /
                        static_cast<double>(metrics.pairs_because);
  }
  return metrics;
}

double EvaluateDespiteRelevance(const ExecutionLog& log,
                                const PairSchema& schema,
                                const Query& bound_query,
                                const Predicate& despite_ext,
                                const PairFeatureOptions& options) {
  std::size_t matching = 0;
  std::size_t expected = 0;
  ForEachOrderedPair(
      log, schema, options,
      [&](std::size_t, std::size_t, const PairFeatureView& view) {
        const PairLabel label = ClassifyPair(bound_query, view);
        if (label == PairLabel::kUnrelated) return true;
        if (!despite_ext.Eval(view)) return true;
        ++matching;
        if (label == PairLabel::kExpected) ++expected;
        return true;
      });
  if (matching == 0) return 0.0;
  return static_cast<double>(expected) / static_cast<double>(matching);
}

bool IsApplicable(const Explanation& explanation, const PairSchema& schema,
                  const ExecutionRecord& first, const ExecutionRecord& second,
                  const PairFeatureOptions& options) {
  PairFeatureView view(&schema, &first, &second, &options);
  return explanation.despite.Eval(view) && explanation.because.Eval(view);
}

}  // namespace perfxplain
