#include "core/metrics.h"

#include <vector>

#include "pxql/compiled_predicate.h"

namespace perfxplain {

ExplanationMetrics EvaluateExplanation(const ExecutionLog& log,
                                       const PairSchema& schema,
                                       const Query& bound_query,
                                       const Explanation& explanation,
                                       const PairFeatureOptions& options) {
  // Per §4.2 of the paper, all three probabilities are measured over the
  // pairs *related* to the query — those satisfying des AND (obs OR exp)
  // (Definition 7). Pairs exhibiting some third behavior (neither observed
  // nor expected) are not part of the population.
  const ColumnarLog columns(log);
  const CompiledQuery query =
      CompiledQuery::Compile(bound_query, schema, columns);
  const CompiledPredicate despite =
      CompiledPredicate::Compile(explanation.despite, schema, columns);
  const CompiledPredicate because =
      CompiledPredicate::Compile(explanation.because, schema, columns);
  const double f = options.sim_fraction;

  struct Counts {
    std::size_t pairs_despite = 0;
    std::size_t pairs_despite_exp = 0;
    std::size_t pairs_because = 0;
    std::size_t pairs_because_obs = 0;
  };
  std::vector<Counts> partials;
  // Selection-pruned: pairs failing the query's despite program are
  // unrelated and touch no counter, so the metrics are identical.
  ScanDespitePairs(query.despite, columns.rows(), EnumerationOptions{},
                   partials,
                   [&](Counts& local, std::size_t i, std::size_t j) {
                     const PairLabel label =
                         ClassifyPairCompiled(query, i, j, f);
                     if (label == PairLabel::kUnrelated) return;
                     if (!despite.Eval(i, j, f)) return;
                     ++local.pairs_despite;
                     if (label == PairLabel::kExpected) {
                       ++local.pairs_despite_exp;
                     }
                     if (because.Eval(i, j, f)) {
                       ++local.pairs_because;
                       if (label == PairLabel::kObserved) {
                         ++local.pairs_because_obs;
                       }
                     }
                   });

  ExplanationMetrics metrics;
  for (const Counts& local : partials) {
    metrics.pairs_despite += local.pairs_despite;
    metrics.pairs_despite_exp += local.pairs_despite_exp;
    metrics.pairs_because += local.pairs_because;
    metrics.pairs_because_obs += local.pairs_because_obs;
  }
  if (metrics.pairs_despite > 0) {
    metrics.relevance = static_cast<double>(metrics.pairs_despite_exp) /
                        static_cast<double>(metrics.pairs_despite);
    metrics.generality = static_cast<double>(metrics.pairs_because) /
                         static_cast<double>(metrics.pairs_despite);
  }
  if (metrics.pairs_because > 0) {
    metrics.precision = static_cast<double>(metrics.pairs_because_obs) /
                        static_cast<double>(metrics.pairs_because);
  }
  return metrics;
}

double EvaluateDespiteRelevance(const ExecutionLog& log,
                                const PairSchema& schema,
                                const Query& bound_query,
                                const Predicate& despite_ext,
                                const PairFeatureOptions& options) {
  const ColumnarLog columns(log);
  const CompiledQuery query =
      CompiledQuery::Compile(bound_query, schema, columns);
  const CompiledPredicate despite =
      CompiledPredicate::Compile(despite_ext, schema, columns);
  const double f = options.sim_fraction;

  struct Counts {
    std::size_t matching = 0;
    std::size_t expected = 0;
  };
  std::vector<Counts> partials;
  ScanDespitePairs(query.despite, columns.rows(), EnumerationOptions{},
                   partials,
                   [&](Counts& local, std::size_t i, std::size_t j) {
                     const PairLabel label =
                         ClassifyPairCompiled(query, i, j, f);
                     if (label == PairLabel::kUnrelated) return;
                     if (!despite.Eval(i, j, f)) return;
                     ++local.matching;
                     if (label == PairLabel::kExpected) ++local.expected;
                   });
  std::size_t matching = 0;
  std::size_t expected = 0;
  for (const Counts& local : partials) {
    matching += local.matching;
    expected += local.expected;
  }
  if (matching == 0) return 0.0;
  return static_cast<double>(expected) / static_cast<double>(matching);
}

bool IsApplicable(const Explanation& explanation, const PairSchema& schema,
                  const ExecutionRecord& first, const ExecutionRecord& second,
                  const PairFeatureOptions& options) {
  // Build a two-row columnar log of just this (possibly ad-hoc) pair and
  // compile both clauses against it: a program's Eval over rows (0, 1) is
  // exactly Predicate::Eval over the lazy view of (first, second) —
  // including missing values and NaN — and compile-time always-false
  // resolution (constants absent from the two records' dictionary, kind
  // mismatches) is correct here because the evaluated pair IS the whole
  // log. This was the last production consumer of PairFeatureView.
  const ColumnarLog columns(schema.raw(), {&first, &second});
  const CompiledPredicate despite =
      CompiledPredicate::Compile(explanation.despite, schema, columns);
  if (!despite.Eval(0, 1, options.sim_fraction)) return false;
  const CompiledPredicate because =
      CompiledPredicate::Compile(explanation.because, schema, columns);
  return because.Eval(0, 1, options.sim_fraction);
}

}  // namespace perfxplain
