#include "core/perfxplain.h"

#include <utility>

namespace perfxplain {

PerfXplain::PerfXplain(ExecutionLog log, Options options)
    : engine_(std::move(log), std::move(options)) {}

Result<Explanation> PerfXplain::ExplainText(const std::string& pxql) const {
  auto query = ParseQuery(pxql);
  if (!query.ok()) return query.status();
  return Explain(query.value());
}

Result<Explanation> PerfXplain::Explain(const Query& query) const {
  auto prepared = engine_.Prepare(query);
  if (!prepared.ok()) return prepared.status();
  auto response = engine_.Explain(*prepared, ExplainRequest{});
  if (!response.ok()) return response.status();
  return std::move(response).value().explanation;
}

Result<Predicate> PerfXplain::GenerateDespiteText(
    const std::string& pxql) const {
  auto query = ParseQuery(pxql);
  if (!query.ok()) return query.status();
  return GenerateDespite(query.value());
}

Result<Predicate> PerfXplain::GenerateDespite(const Query& query) const {
  auto prepared = engine_.Prepare(query);
  if (!prepared.ok()) return prepared.status();
  return engine_.GenerateDespite(*prepared);
}

Result<Explanation> PerfXplain::ExplainWithAutoDespite(
    const Query& query) const {
  auto prepared = engine_.Prepare(query);
  if (!prepared.ok()) return prepared.status();
  ExplainRequest request;
  request.auto_despite = true;
  auto response = engine_.Explain(*prepared, request);
  if (!response.ok()) return response.status();
  return std::move(response).value().explanation;
}

Result<Explanation> PerfXplain::ExplainWith(Technique technique,
                                            const Query& query,
                                            std::size_t width) const {
  auto prepared = engine_.Prepare(query);
  if (!prepared.ok()) return prepared.status();
  ExplainRequest request;
  request.technique = technique;
  request.width = width;
  auto response = engine_.Explain(*prepared, request);
  if (!response.ok()) return response.status();
  return std::move(response).value().explanation;
}

Result<ExplanationMetrics> PerfXplain::Evaluate(
    const Query& query, const Explanation& explanation) const {
  // Deliberately not routed through Prepare: evaluation needs no pair of
  // interest, and the old facade accepted queries whose ids are absent
  // from the log.
  return engine_.EvaluateOn(engine_.log(), query, explanation);
}

Result<ExplanationMetrics> PerfXplain::EvaluateOn(
    const ExecutionLog& test_log, const Query& query,
    const Explanation& explanation) const {
  return engine_.EvaluateOn(test_log, query, explanation);
}

}  // namespace perfxplain
