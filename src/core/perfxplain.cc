#include "core/perfxplain.h"

namespace perfxplain {

const char* TechniqueToString(Technique technique) {
  switch (technique) {
    case Technique::kPerfXplain:
      return "PerfXplain";
    case Technique::kRuleOfThumb:
      return "RuleOfThumb";
    case Technique::kSimButDiff:
      return "SimButDiff";
  }
  return "?";
}

PerfXplain::PerfXplain(ExecutionLog log, Options options)
    : log_(std::move(log)), options_(options) {
  // All three techniques share the explainer's dictionary-encoded replica
  // of the log: one columnar build serves every enumeration and ranking
  // pass.
  explainer_ = std::make_unique<Explainer>(&log_, options_.explainer);
  sim_but_diff_ = std::make_unique<SimButDiff>(&log_, options_.sim_but_diff,
                                               &explainer_->columnar());
}

Result<Explanation> PerfXplain::ExplainText(const std::string& pxql) const {
  auto query = ParseQuery(pxql);
  if (!query.ok()) return query.status();
  return Explain(query.value());
}

Result<Explanation> PerfXplain::Explain(const Query& query) const {
  return explainer_->Explain(query);
}

Result<Predicate> PerfXplain::GenerateDespiteText(
    const std::string& pxql) const {
  auto query = ParseQuery(pxql);
  if (!query.ok()) return query.status();
  return GenerateDespite(query.value());
}

Result<Predicate> PerfXplain::GenerateDespite(const Query& query) const {
  return explainer_->GenerateDespite(query,
                                     options_.explainer.despite_width);
}

Result<Explanation> PerfXplain::ExplainWithAutoDespite(
    const Query& query) const {
  return explainer_->ExplainWithAutoDespite(query);
}

Result<Explanation> PerfXplain::ExplainWith(Technique technique,
                                            const Query& query,
                                            std::size_t width) const {
  switch (technique) {
    case Technique::kPerfXplain: {
      ExplainerOptions explainer_options = options_.explainer;
      explainer_options.width = width;
      Explainer explainer(&log_, explainer_options);
      return explainer.Explain(query);
    }
    case Technique::kRuleOfThumb: {
      if (rule_of_thumb_ == nullptr) {
        rule_of_thumb_ = std::make_unique<RuleOfThumb>(
            &log_, options_.rule_of_thumb, &explainer_->columnar());
      }
      return rule_of_thumb_->Explain(query, width);
    }
    case Technique::kSimButDiff:
      return sim_but_diff_->Explain(query, width);
  }
  return Status::InvalidArgument("unknown technique");
}

Result<ExplanationMetrics> PerfXplain::Evaluate(
    const Query& query, const Explanation& explanation) const {
  return EvaluateOn(log_, query, explanation);
}

Result<ExplanationMetrics> PerfXplain::EvaluateOn(
    const ExecutionLog& test_log, const Query& query,
    const Explanation& explanation) const {
  if (!(test_log.schema() == log_.schema())) {
    return Status::InvalidArgument("test log schema differs from training");
  }
  Query bound = query;
  PX_RETURN_IF_ERROR(bound.Bind(pair_schema()));
  Explanation bound_explanation = explanation;
  PX_RETURN_IF_ERROR(bound_explanation.despite.Bind(pair_schema()));
  PX_RETURN_IF_ERROR(bound_explanation.because.Bind(pair_schema()));
  return EvaluateExplanation(test_log, pair_schema(), bound,
                             bound_explanation, options_.explainer.pair);
}

}  // namespace perfxplain
