#ifndef PERFXPLAIN_CORE_FORMATTER_H_
#define PERFXPLAIN_CORE_FORMATTER_H_

#include <string>

#include "core/explanation.h"
#include "pxql/query.h"

namespace perfxplain {

/// Renders explanations the way the paper's prose does (§1): "even though
/// <despite>, J1 was <observed> most likely because <because>". The goal
/// is that non-expert users — the paper's target audience — can read an
/// answer without knowing the pair-feature encoding.
///
/// Example output:
///   Even though the two executions processed a similar amount of input
///   data, job J1 took much longer most likely because: its input size was
///   much greater, its avg_load_five was much greater, and numinstances
///   was at most 12.
std::string RenderExplanationProse(const Query& query,
                                   const Explanation& explanation);

/// One atom in English ("the two executions have the same blocksize",
/// "J1's inputsize was much greater", "blocksize was at least 128 MB").
std::string RenderAtomProse(const Atom& atom);

/// Formats byte-valued constants with binary units (e.g., "128 MB") and
/// everything else via Value::ToString. Used by RenderAtomProse for
/// features whose name suggests a byte quantity (contains "size" or
/// "bytes").
std::string FormatConstant(const std::string& feature, const Value& value);

}  // namespace perfxplain

#endif  // PERFXPLAIN_CORE_FORMATTER_H_
