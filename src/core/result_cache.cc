#include "core/result_cache.h"

#include <utility>

namespace perfxplain {

namespace {

std::size_t PredicateBytes(const Predicate& predicate) {
  std::size_t total = sizeof(Predicate);
  for (const Atom& atom : predicate.atoms()) {
    total += sizeof(Atom) + atom.feature().size();
  }
  return total;
}

std::size_t TraceBytes(const std::vector<ExplanationAtom>& trace) {
  std::size_t total = trace.capacity() * sizeof(ExplanationAtom);
  for (const ExplanationAtom& entry : trace) {
    total += entry.atom.feature().size();
  }
  return total;
}

}  // namespace

ResultCache::ResultCache(std::size_t budget_bytes)
    : budget_bytes_(budget_bytes) {}

std::string ResultCache::SnapshotPrefix(std::uint64_t snapshot_id) {
  return std::to_string(snapshot_id) + "|";
}

std::size_t ResultCache::EstimateBytes(const std::string& key,
                                       const Value& value) {
  // The footprint estimate the byte budget meters: container node +
  // key (stored twice: map node and LRU list node) + the explanation's
  // heap allocations. Close enough that the budget means what it says;
  // exactness is not load-bearing.
  std::size_t total = sizeof(Entry) + 2 * key.size() + 128;
  total += PredicateBytes(value.explanation.despite);
  total += PredicateBytes(value.explanation.because);
  total += TraceBytes(value.explanation.despite_trace);
  total += TraceBytes(value.explanation.because_trace);
  if (value.metrics.has_value()) total += sizeof(ExplanationMetrics);
  return total;
}

std::optional<ResultCache::Value> ResultCache::Get(const std::string& key) {
  MutexLock lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  lru_.splice(lru_.end(), lru_, it->second.lru_pos);  // refresh to hot end
  ++hits_;
  return it->second.value;
}

void ResultCache::Put(const std::string& key, Value value) {
  const std::size_t bytes = EstimateBytes(key, value);
  if (bytes > budget_bytes_) return;  // would flush everything for nothing
  MutexLock lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Refresh: concurrent misses on the same key race to Put an
    // identical value; keep the first, bump recency.
    lru_.splice(lru_.end(), lru_, it->second.lru_pos);
    return;
  }
  Entry entry;
  entry.value = std::move(value);
  entry.bytes = bytes;
  entry.lru_pos = lru_.insert(lru_.end(), key);
  entries_.emplace(key, std::move(entry));
  bytes_ += bytes;
  ++insertions_;
  while (bytes_ > budget_bytes_) {
    auto victim = entries_.find(lru_.front());
    ++evictions_;
    EraseEntry(victim);
  }
}

std::size_t ResultCache::InvalidateSnapshot(std::uint64_t snapshot_id) {
  const std::string prefix = SnapshotPrefix(snapshot_id);
  MutexLock lock(mutex_);
  // The id prefix makes a snapshot's entries one contiguous map range:
  // walk from the first key >= "<id>|" until the prefix stops matching.
  std::size_t dropped = 0;
  auto it = entries_.lower_bound(prefix);
  while (it != entries_.end() &&
         it->first.compare(0, prefix.size(), prefix) == 0) {
    auto next = std::next(it);
    EraseEntry(it);
    ++dropped;
    it = next;
  }
  return dropped;
}

ResultCache::Stats ResultCache::stats() const {
  MutexLock lock(mutex_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.insertions = insertions_;
  stats.evictions = evictions_;
  stats.entries = entries_.size();
  stats.bytes = bytes_;
  return stats;
}

void ResultCache::EraseEntry(std::map<std::string, Entry>::iterator it) {
  bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
}

}  // namespace perfxplain
