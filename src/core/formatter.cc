#include "core/formatter.h"

#include <cmath>

#include "common/string_util.h"
#include "features/pair_schema.h"

namespace perfxplain {

namespace {

/// Splits a pair-feature name into (raw feature, suffix kind).
struct ParsedName {
  std::string raw;
  enum class Kind { kIsSame, kCompare, kDiff, kBase } kind = Kind::kBase;
};

ParsedName ParseFeatureName(const std::string& name) {
  ParsedName parsed;
  if (EndsWith(name, "_isSame")) {
    parsed.kind = ParsedName::Kind::kIsSame;
    parsed.raw = name.substr(0, name.size() - 7);
  } else if (EndsWith(name, "_compare")) {
    parsed.kind = ParsedName::Kind::kCompare;
    parsed.raw = name.substr(0, name.size() - 8);
  } else if (EndsWith(name, "_diff")) {
    parsed.kind = ParsedName::Kind::kDiff;
    parsed.raw = name.substr(0, name.size() - 5);
  } else {
    parsed.raw = name;
  }
  return parsed;
}

bool LooksLikeBytes(const std::string& feature) {
  return feature.find("size") != std::string::npos ||
         feature.find("bytes") != std::string::npos;
}

const char* OpProse(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "was";
    case CompareOp::kNe:
      return "was not";
    case CompareOp::kLt:
      return "was less than";
    case CompareOp::kLe:
      return "was at most";
    case CompareOp::kGt:
      return "was greater than";
    case CompareOp::kGe:
      return "was at least";
  }
  return "was";
}

}  // namespace

std::string FormatConstant(const std::string& feature, const Value& value) {
  if (value.is_numeric() && LooksLikeBytes(feature)) {
    const double bytes = value.number();
    const struct {
      double scale;
      const char* unit;
    } kUnits[] = {{1024.0 * 1024 * 1024 * 1024, "TB"},
                  {1024.0 * 1024 * 1024, "GB"},
                  {1024.0 * 1024, "MB"},
                  {1024.0, "KB"}};
    for (const auto& unit : kUnits) {
      if (std::abs(bytes) >= unit.scale) {
        const double scaled = bytes / unit.scale;
        if (scaled == std::floor(scaled)) {
          return StrFormat("%.0f %s", scaled, unit.unit);
        }
        return StrFormat("%.1f %s", scaled, unit.unit);
      }
    }
  }
  return value.ToString();
}

std::string RenderAtomProse(const Atom& atom) {
  const ParsedName parsed = ParseFeatureName(atom.feature());
  const bool equality = atom.op() == CompareOp::kEq;
  switch (parsed.kind) {
    case ParsedName::Kind::kIsSame:
      if (equality && atom.constant() == Value::Nominal("T")) {
        return "the two executions had the same " + parsed.raw;
      }
      if (equality && atom.constant() == Value::Nominal("F")) {
        return "the two executions differed on " + parsed.raw;
      }
      break;
    case ParsedName::Kind::kCompare:
      if (equality && atom.constant() == Value::Nominal("GT")) {
        return "J1's " + parsed.raw + " was much greater than J2's";
      }
      if (equality && atom.constant() == Value::Nominal("LT")) {
        return "J1's " + parsed.raw + " was much less than J2's";
      }
      if (equality && atom.constant() == Value::Nominal("SIM")) {
        return "the two executions had a similar " + parsed.raw;
      }
      break;
    case ParsedName::Kind::kDiff:
      if (equality) {
        return parsed.raw + " changed as " + atom.constant().ToString();
      }
      break;
    case ParsedName::Kind::kBase:
      return parsed.raw + " " + std::string(OpProse(atom.op())) + " " +
             FormatConstant(parsed.raw, atom.constant());
  }
  // Fallback: the PXQL text itself.
  return atom.ToString();
}

namespace {

std::string RenderClauseProse(const Predicate& predicate) {
  std::string out;
  const auto& atoms = predicate.atoms();
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    if (i > 0) {
      out += (i + 1 == atoms.size()) ? ", and " : ", ";
    }
    out += RenderAtomProse(atoms[i]);
  }
  return out;
}

/// Describes what the user observed, from the observed clause.
std::string RenderObserved(const Predicate& observed) {
  for (const Atom& atom : observed.atoms()) {
    const ParsedName parsed = ParseFeatureName(atom.feature());
    if (parsed.raw == "duration" &&
        parsed.kind == ParsedName::Kind::kCompare &&
        atom.op() == CompareOp::kEq) {
      if (atom.constant() == Value::Nominal("GT")) {
        return "J1 took much longer than J2";
      }
      if (atom.constant() == Value::Nominal("LT")) {
        return "J1 was much faster than J2";
      }
      if (atom.constant() == Value::Nominal("SIM")) {
        return "the two executions took about the same time";
      }
    }
  }
  return "the pair performed as observed (" + observed.ToString() + ")";
}

}  // namespace

std::string RenderExplanationProse(const Query& query,
                                   const Explanation& explanation) {
  std::string out;
  const Predicate full_despite = query.despite.And(explanation.despite);
  if (!full_despite.is_true()) {
    out += "Even though " + RenderClauseProse(full_despite) + ", ";
    out += RenderObserved(query.observed);
  } else {
    const std::string observed = RenderObserved(query.observed);
    out += static_cast<char>(std::toupper(observed[0]));
    out += observed.substr(1);
  }
  out += " most likely because: " + RenderClauseProse(explanation.because) +
         ".";
  return out;
}

}  // namespace perfxplain
